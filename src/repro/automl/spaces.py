"""Hyper-parameter search spaces and candidate configuration sampling.

The default space covers the model families of :mod:`repro.ml` plus a
preprocessing choice — the structure AutoSklearn searches, scaled to what
runs in seconds rather than hours.  Spaces are declarative so the domain
customization layer (:mod:`repro.domain`) can restrict or re-weight them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..exceptions import ValidationError
from ..ml.boosting import GradientBoostingClassifier
from ..ml.forest import ExtraTreesClassifier, RandomForestClassifier
from ..ml.linear import LogisticRegression
from ..ml.naive_bayes import GaussianNB
from ..ml.neighbors import KNeighborsClassifier
from ..ml.preprocessing import IdentityTransformer, MinMaxScaler, StandardScaler
from ..ml.tree import DecisionTreeClassifier
from .pipeline import Pipeline

__all__ = [
    "Categorical",
    "IntRange",
    "FloatRange",
    "ModelFamily",
    "Candidate",
    "default_model_families",
    "sample_candidate",
]


class Categorical:
    """A finite unordered choice."""

    def __init__(self, *choices: Any):
        if not choices:
            raise ValidationError("Categorical needs at least one choice")
        self.choices = choices

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def __repr__(self) -> str:
        return f"Categorical{self.choices!r}"


class IntRange:
    """Uniform (optionally log-uniform) integer range, inclusive."""

    def __init__(self, low: int, high: int, *, log: bool = False):
        if low > high:
            raise ValidationError(f"IntRange low {low} > high {high}")
        if log and low < 1:
            raise ValidationError("log-scaled IntRange requires low >= 1")
        self.low, self.high, self.log = low, high, log

    def sample(self, rng: np.random.Generator) -> int:
        if self.log:
            value = np.exp(rng.uniform(np.log(self.low), np.log(self.high + 1)))
            return int(np.clip(int(value), self.low, self.high))
        return int(rng.integers(self.low, self.high + 1))

    def __repr__(self) -> str:
        return f"IntRange({self.low}, {self.high}, log={self.log})"


class FloatRange:
    """Uniform (optionally log-uniform) float range."""

    def __init__(self, low: float, high: float, *, log: bool = False):
        if low > high:
            raise ValidationError(f"FloatRange low {low} > high {high}")
        if log and low <= 0:
            raise ValidationError("log-scaled FloatRange requires low > 0")
        self.low, self.high, self.log = low, high, log

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def __repr__(self) -> str:
        return f"FloatRange({self.low}, {self.high}, log={self.log})"


@dataclass
class ModelFamily:
    """One searchable estimator family.

    ``factory`` builds an unfitted estimator from sampled parameters (plus a
    ``random_state`` where the family is stochastic).
    """

    name: str
    factory: Callable[..., Any]
    space: dict[str, Any]
    stochastic: bool = True

    def build(self, params: dict[str, Any], rng: np.random.Generator) -> Any:
        if self.stochastic:
            return self.factory(random_state=int(rng.integers(0, 2**31 - 1)), **params)
        return self.factory(**params)


@dataclass
class Candidate:
    """A fully specified pipeline configuration (family + params + scaler)."""

    family: str
    params: dict[str, Any]
    scaler: str
    pipeline: Pipeline = field(repr=False, default=None)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner}) | scaler={self.scaler}"


_SCALERS: dict[str, Callable[[], Any]] = {
    "none": IdentityTransformer,
    "standard": StandardScaler,
    "minmax": MinMaxScaler,
}


def default_model_families() -> list[ModelFamily]:
    """The default AutoML search space over :mod:`repro.ml` classifiers."""
    return [
        ModelFamily(
            "decision_tree",
            DecisionTreeClassifier,
            {
                "max_depth": IntRange(2, 16),
                "min_samples_leaf": IntRange(1, 20, log=True),
                "criterion": Categorical("gini", "entropy"),
            },
        ),
        ModelFamily(
            "random_forest",
            RandomForestClassifier,
            {
                "n_estimators": IntRange(20, 80, log=True),
                "max_depth": IntRange(4, 16),
                "min_samples_leaf": IntRange(1, 10, log=True),
                "max_features": Categorical("sqrt", "log2", None),
            },
        ),
        ModelFamily(
            "extra_trees",
            ExtraTreesClassifier,
            {
                "n_estimators": IntRange(20, 80, log=True),
                "max_depth": IntRange(4, 16),
                "min_samples_leaf": IntRange(1, 10, log=True),
            },
        ),
        ModelFamily(
            "gradient_boosting",
            GradientBoostingClassifier,
            {
                "n_estimators": IntRange(20, 60, log=True),
                "learning_rate": FloatRange(0.03, 0.3, log=True),
                "max_depth": IntRange(2, 5),
                "subsample": FloatRange(0.6, 1.0),
            },
        ),
        ModelFamily(
            "logistic_regression",
            LogisticRegression,
            {"C": FloatRange(1e-2, 1e2, log=True)},
            stochastic=False,
        ),
        ModelFamily(
            "gaussian_nb",
            GaussianNB,
            {"var_smoothing": FloatRange(1e-10, 1e-6, log=True)},
            stochastic=False,
        ),
        ModelFamily(
            "knn",
            KNeighborsClassifier,
            {
                "n_neighbors": IntRange(1, 25, log=True),
                "weights": Categorical("uniform", "distance"),
            },
            stochastic=False,
        ),
    ]


def sample_candidate(
    families: list[ModelFamily],
    rng: np.random.Generator,
    *,
    scaler_choices: tuple[str, ...] = ("none", "standard", "minmax"),
) -> Candidate:
    """Draw one pipeline configuration uniformly from the space."""
    if not families:
        raise ValidationError("no model families to sample from")
    for scaler in scaler_choices:
        if scaler not in _SCALERS:
            raise ValidationError(f"unknown scaler {scaler!r}; choices: {sorted(_SCALERS)}")
    family = families[int(rng.integers(0, len(families)))]
    params = {name: space.sample(rng) for name, space in family.space.items()}
    scaler = scaler_choices[int(rng.integers(0, len(scaler_choices)))]
    pipeline = Pipeline(
        [
            ("scaler", _SCALERS[scaler]()),
            ("model", family.build(params, rng)),
        ]
    )
    return Candidate(family=family.name, params=params, scaler=scaler, pipeline=pipeline)
