"""AutoML substrate: random search + Caruana ensemble selection.

The stand-in for AutoSklearn in this reproduction.  The central property
the paper relies on — that AutoML emits an *ensemble of diverse,
individually strong models* usable as a query-by-committee committee — is
preserved: :class:`AutoMLClassifier` exposes its fitted members via
``ensemble_members_``.
"""

from .automl import AutoMLClassifier
from .ensemble import EnsembleClassifier, greedy_ensemble_selection
from .spec import AutoMLSpec
from .halving import SuccessiveHalvingSearch
from .meta import MetaLearningStore, MetaRecord, WarmStartSearch, compute_meta_features
from .pipeline import Pipeline
from .search import EvaluatedCandidate, RandomSearch, SearchResult
from .spaces import (
    Candidate,
    Categorical,
    FloatRange,
    IntRange,
    ModelFamily,
    default_model_families,
    sample_candidate,
)

__all__ = [
    "AutoMLClassifier",
    "AutoMLSpec",
    "EnsembleClassifier",
    "greedy_ensemble_selection",
    "Pipeline",
    "RandomSearch",
    "SuccessiveHalvingSearch",
    "MetaLearningStore",
    "MetaRecord",
    "WarmStartSearch",
    "compute_meta_features",
    "SearchResult",
    "EvaluatedCandidate",
    "Candidate",
    "Categorical",
    "IntRange",
    "FloatRange",
    "ModelFamily",
    "default_model_families",
    "sample_candidate",
]
