"""Random hyper-parameter search with wall-clock and iteration budgets.

The search holds out a stratified validation split, scores every sampled
pipeline on it, and keeps the fitted pipelines plus their validation
probability matrices — the inputs ensemble selection needs.  Candidates
whose fit raises a library error are recorded as failures and skipped, so a
single degenerate configuration never kills a run (mirroring how
AutoSklearn tolerates crashing configurations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import ReproError, SearchBudgetError, ValidationError
from ..ml.base import check_X_y
from ..ml.metrics import balanced_accuracy
from ..ml.model_selection import stratified_split_indices
from ..rng import RandomState, check_random_state
from .spaces import Candidate, ModelFamily, default_model_families, sample_candidate

__all__ = ["SearchResult", "EvaluatedCandidate", "RandomSearch", "budget_exhausted"]


def budget_exhausted(start: float, time_budget: float | None, n_evaluated: int) -> bool:
    """Shared wall-clock budget test for every search strategy.

    The contract (pinned by ``tests/test_automl_budget.py``): ``None``
    means the clock is never consulted; ``0`` is exhausted before the
    first evaluation, i.e. zero search iterations; a positive budget
    always admits at least one evaluation so a search can return
    something, then stops once the elapsed time exceeds it.
    """
    if time_budget is None:
        return False
    if time_budget == 0:
        return True
    if n_evaluated == 0:
        return False
    return time.monotonic() - start > time_budget


@dataclass
class EvaluatedCandidate:
    """One scored configuration from a search run."""

    candidate: Candidate
    score: float
    fit_seconds: float
    valid_proba: np.ndarray = field(repr=False)


@dataclass
class SearchResult:
    """Everything a search produced, ordered best-first."""

    evaluated: list[EvaluatedCandidate]
    failures: list[tuple[Candidate, str]]
    train_indices: np.ndarray
    valid_indices: np.ndarray
    classes: np.ndarray

    @property
    def best(self) -> EvaluatedCandidate:
        if not self.evaluated:
            raise SearchBudgetError("search evaluated no successful candidates")
        return self.evaluated[0]


class RandomSearch:
    """Budgeted random search over pipeline configurations.

    Parameters
    ----------
    n_iterations:
        Maximum number of candidate configurations to evaluate.
    time_budget:
        Optional wall-clock cap in seconds.  ``None`` disables the clock
        entirely (only ``n_iterations`` limits the run), a positive value
        always admits at least one evaluation, and ``0`` means *no search
        iterations at all* — ``run`` raises
        :class:`~repro.exceptions.SearchBudgetError` without touching the
        clock.
    valid_fraction:
        Fraction of the training data held out for scoring candidates.
    scorer:
        ``scorer(y_true, y_pred) -> float`` (higher is better); defaults to
        balanced accuracy, the paper's metric.
    """

    def __init__(
        self,
        *,
        n_iterations: int = 30,
        time_budget: float | None = None,
        valid_fraction: float = 0.25,
        families: list[ModelFamily] | None = None,
        scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
        initial_candidates: list[Candidate] | None = None,
        random_state: RandomState = None,
    ):
        if n_iterations < 1:
            raise SearchBudgetError(f"n_iterations must be >= 1, got {n_iterations}")
        if time_budget is not None and time_budget < 0:
            raise SearchBudgetError(f"time_budget must be >= 0 or None, got {time_budget}")
        if not 0.0 < valid_fraction < 1.0:
            raise ValidationError(f"valid_fraction must be in (0, 1), got {valid_fraction}")
        self.n_iterations = n_iterations
        self.time_budget = time_budget
        self.valid_fraction = valid_fraction
        self.families = families
        self.scorer = scorer or balanced_accuracy
        # Warm-start queue (e.g. from meta-learning): evaluated first, in
        # order, before random exploration takes over.
        self.initial_candidates = list(initial_candidates) if initial_candidates else []
        self.random_state = random_state

    def run(self, X, y) -> SearchResult:
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        families = self.families if self.families is not None else default_model_families()
        train_idx, valid_idx = stratified_split_indices(y, test_fraction=self.valid_fraction, rng=rng)
        if valid_idx.size == 0:
            raise ValidationError("validation split is empty; provide more data or a larger valid_fraction")
        X_train, y_train = X[train_idx], y[train_idx]
        X_valid, y_valid = X[valid_idx], y[valid_idx]
        classes = np.unique(y)

        evaluated: list[EvaluatedCandidate] = []
        failures: list[tuple[Candidate, str]] = []
        start = time.monotonic()
        warm_queue = list(self.initial_candidates)
        for _ in range(self.n_iterations):
            if budget_exhausted(start, self.time_budget, len(evaluated)):
                break
            candidate = warm_queue.pop(0) if warm_queue else sample_candidate(families, rng)
            fit_start = time.monotonic()
            try:
                candidate.pipeline.fit(X_train, y_train)
                proba = _align_proba(candidate.pipeline, X_valid, classes)
                predictions = classes[np.argmax(proba, axis=1)]
                score = float(self.scorer(y_valid, predictions))
            except ReproError as exc:
                failures.append((candidate, str(exc)))
                continue
            evaluated.append(
                EvaluatedCandidate(
                    candidate=candidate,
                    score=score,
                    fit_seconds=time.monotonic() - fit_start,
                    valid_proba=proba,
                )
            )
        evaluated.sort(key=lambda item: item.score, reverse=True)
        if not evaluated:
            if self.time_budget == 0:
                raise SearchBudgetError("time_budget=0 allows no candidate evaluations")
            raise SearchBudgetError(
                f"all {len(failures)} candidate configurations failed; first error: "
                f"{failures[0][1] if failures else 'none sampled'}"
            )
        return SearchResult(
            evaluated=evaluated,
            failures=failures,
            train_indices=train_idx,
            valid_indices=valid_idx,
            classes=classes,
        )


def _align_proba(pipeline, X: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Expand a pipeline's probability columns onto the global class order.

    A candidate fit on a stratified split always sees every class, but this
    guard keeps the search correct if a caller feeds custom splits.
    """
    proba = pipeline.predict_proba(X)
    member_classes = pipeline.classes_
    if member_classes.shape[0] == classes.shape[0] and np.all(member_classes == classes):
        return proba
    aligned = np.zeros((proba.shape[0], classes.shape[0]))
    positions = np.searchsorted(classes, member_classes)
    aligned[:, positions] = proba
    return aligned
