"""Preprocessing + estimator pipelines.

Each AutoML candidate is a :class:`Pipeline` of zero or more transformers
followed by a classifier.  The pipeline forwards the classifier protocol
(``predict`` / ``predict_proba`` / ``classes_``) so fitted pipelines are
drop-in members of the feedback algorithm's model committee.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..ml.base import check_is_fitted, clone

__all__ = ["Pipeline"]


class Pipeline:
    """A linear chain of named transformers ending in a classifier.

    ``steps`` is a sequence of ``(name, estimator)`` pairs.  All but the
    last step must provide ``fit_transform``/``transform``; the last must be
    a classifier.
    """

    def __init__(self, steps: Sequence[tuple[str, Any]]):
        steps = list(steps)
        if not steps:
            raise ValidationError("Pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate step names in pipeline: {names}")
        for name, transformer in steps[:-1]:
            if not hasattr(transformer, "transform"):
                raise ValidationError(f"intermediate step {name!r} lacks a transform method")
        if not hasattr(steps[-1][1], "predict"):
            raise ValidationError(f"final step {steps[-1][0]!r} is not a classifier")
        self.steps = steps

    @property
    def named_steps(self) -> dict[str, Any]:
        return dict(self.steps)

    @property
    def final_estimator(self) -> Any:
        return self.steps[-1][1]

    @property
    def classes_(self) -> np.ndarray:
        return self.final_estimator.classes_

    def clone(self) -> "Pipeline":
        return Pipeline([(name, clone(estimator)) for name, estimator in self.steps])

    def get_params(self) -> dict[str, Any]:
        """Flattened ``step__param`` view of every step's parameters."""
        params: dict[str, Any] = {}
        for name, estimator in self.steps:
            if hasattr(estimator, "get_params"):
                for key, value in estimator.get_params().items():
                    params[f"{name}__{key}"] = value
        return params

    def fit(self, X, y) -> "Pipeline":
        data = np.asarray(X, dtype=np.float64)
        for _, transformer in self.steps[:-1]:
            data = transformer.fit_transform(data, y)
        self.final_estimator.fit(data, y)
        self.fitted_ = True
        return self

    def _transform(self, X) -> np.ndarray:
        check_is_fitted(self, "fitted_")
        data = np.asarray(X, dtype=np.float64)
        for _, transformer in self.steps[:-1]:
            data = transformer.transform(data)
        return data

    def predict(self, X) -> np.ndarray:
        return self.final_estimator.predict(self._transform(X))

    def predict_proba(self, X) -> np.ndarray:
        return self.final_estimator.predict_proba(self._transform(X))

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={type(est).__name__}" for name, est in self.steps)
        return f"Pipeline({inner})"
