"""Successive-halving hyper-parameter search.

An alternative to plain random search (Jamieson & Talwalkar 2016): start
many candidate configurations on a small fraction of the training data,
keep the best ``1/eta`` at each rung, and double-down the data budget on
the survivors.  Strong configurations are identified at a fraction of the
full-fit cost, which matters when the AutoML budget is the bottleneck —
the situation the paper's Cross-ALE variant explicitly worries about.

Produces the same :class:`~repro.automl.search.SearchResult` as
:class:`~repro.automl.search.RandomSearch`, so ensemble selection and the
feedback algorithm compose unchanged; select the strategy via
``AutoMLClassifier(search_strategy="halving")``.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..exceptions import ReproError, SearchBudgetError, ValidationError
from ..ml.base import check_X_y
from ..ml.metrics import balanced_accuracy
from ..ml.model_selection import stratified_split_indices
from ..rng import RandomState, check_random_state
from .search import EvaluatedCandidate, SearchResult, _align_proba, budget_exhausted
from .spaces import Candidate, ModelFamily, default_model_families, sample_candidate

__all__ = ["SuccessiveHalvingSearch"]


class SuccessiveHalvingSearch:
    """Budgeted successive halving over pipeline configurations.

    Parameters
    ----------
    n_candidates:
        Configurations sampled at the first rung.
    eta:
        Keep the top ``1/eta`` at each rung (and multiply the per-candidate
        data budget by ``eta``).
    min_resource_fraction:
        Fraction of the training rows the first rung fits on.
    time_budget:
        Optional wall-clock cap in seconds, metered across *all* rungs
        (not per rung).  Same contract as
        :class:`~repro.automl.search.RandomSearch`: ``None`` never
        consults the clock, ``0`` means no evaluations at all, a positive
        value admits at least one evaluation.
    """

    def __init__(
        self,
        *,
        n_candidates: int = 27,
        eta: int = 3,
        min_resource_fraction: float = 0.2,
        valid_fraction: float = 0.25,
        time_budget: float | None = None,
        families: list[ModelFamily] | None = None,
        scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
        random_state: RandomState = None,
    ):
        if n_candidates < 2:
            raise SearchBudgetError(f"n_candidates must be >= 2, got {n_candidates}")
        if eta < 2:
            raise ValidationError(f"eta must be >= 2, got {eta}")
        if not 0.0 < min_resource_fraction <= 1.0:
            raise ValidationError(f"min_resource_fraction must be in (0, 1], got {min_resource_fraction}")
        if not 0.0 < valid_fraction < 1.0:
            raise ValidationError(f"valid_fraction must be in (0, 1), got {valid_fraction}")
        if time_budget is not None and time_budget < 0:
            raise SearchBudgetError(f"time_budget must be >= 0 or None, got {time_budget}")
        self.n_candidates = n_candidates
        self.eta = eta
        self.min_resource_fraction = min_resource_fraction
        self.valid_fraction = valid_fraction
        self.time_budget = time_budget
        self.families = families
        self.scorer = scorer or balanced_accuracy
        self.random_state = random_state

    def run(self, X, y) -> SearchResult:
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        families = self.families if self.families is not None else default_model_families()
        train_idx, valid_idx = stratified_split_indices(y, test_fraction=self.valid_fraction, rng=rng)
        X_train, y_train = X[train_idx], y[train_idx]
        X_valid, y_valid = X[valid_idx], y[valid_idx]
        classes = np.unique(y)

        candidates = [sample_candidate(families, rng) for _ in range(self.n_candidates)]
        failures: list[tuple[Candidate, str]] = []
        start = time.monotonic()
        resource = self.min_resource_fraction
        rows_order = rng.permutation(X_train.shape[0])

        survivors = candidates
        evaluated: dict[int, EvaluatedCandidate] = {}
        while True:
            n_rows = max(20, int(round(resource * X_train.shape[0])))
            rows = rows_order[:n_rows]
            # A rung subset can miss a class on skewed data; top up with one
            # row of each missing class so candidates stay classifiers.
            present = set(np.unique(y_train[rows]).tolist())
            for label in classes:
                if label not in present:
                    extra = np.flatnonzero(y_train == label)[:1]
                    rows = np.concatenate([rows, extra])
            scored: list[tuple[float, Candidate, np.ndarray, float]] = []
            exhausted = False
            for candidate in survivors:
                # Budget is metered over everything evaluated so far across
                # rungs — a fresh rung gets no free evaluations once the
                # clock has run out.
                if budget_exhausted(start, self.time_budget, len(evaluated) + len(scored)):
                    exhausted = True
                    break
                fit_start = time.monotonic()
                try:
                    pipeline = candidate.pipeline.clone()
                    pipeline.fit(X_train[rows], y_train[rows])
                    proba = _align_proba(pipeline, X_valid, classes)
                    predictions = classes[np.argmax(proba, axis=1)]
                    score = float(self.scorer(y_valid, predictions))
                except ReproError as exc:
                    failures.append((candidate, str(exc)))
                    continue
                candidate.pipeline = pipeline  # keep the latest (largest) fit
                scored.append((score, candidate, proba, time.monotonic() - fit_start))
            if not scored:
                break
            scored.sort(key=lambda item: item[0], reverse=True)
            for score, candidate, proba, seconds in scored:
                evaluated[id(candidate)] = EvaluatedCandidate(
                    candidate=candidate, score=score, fit_seconds=seconds, valid_proba=proba
                )
            if exhausted or len(scored) <= 1 or resource >= 1.0:
                break
            keep = max(1, len(scored) // self.eta)
            survivors = [candidate for _, candidate, _, _ in scored[:keep]]
            resource = min(1.0, resource * self.eta)

        results = sorted(evaluated.values(), key=lambda item: item.score, reverse=True)
        if not results:
            if self.time_budget == 0:
                raise SearchBudgetError("time_budget=0 allows no candidate evaluations")
            raise SearchBudgetError(
                f"all {len(failures)} candidate configurations failed; first error: "
                f"{failures[0][1] if failures else 'none sampled'}"
            )
        return SearchResult(
            evaluated=results,
            failures=failures,
            train_indices=train_idx,
            valid_indices=valid_idx,
            classes=classes,
        )
