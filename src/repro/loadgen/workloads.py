"""Deterministic workload shapes: the traffic a million users would send.

A :class:`WorkloadShape` bundles an arrival process with client
behaviour knobs.  Factories build the shapes the north-star regime
cares about:

- :func:`open_loop` — Poisson arrivals at a fixed rate: users do not
  wait for each other, so offered load is independent of service speed
  (the regime where overload actually happens);
- :func:`closed_loop` — a fixed population of clients, each issuing the
  next request after the previous reply (plus think time): offered load
  self-throttles, the classic benchmark-harness regime;
- :func:`retry_storm` — open loop where every shed request is retried
  with backoff, each retry a *new offered attempt* — the feedback loop
  that melts services whose only defence is queueing;
- :func:`flash_crowd` — open loop with a mid-run burst at a much higher
  rate (rate → peak_rate → rate), the "suddenly on the front page"
  shape;
- :func:`slow_client` — requests whose bytes dribble in tiny chunks
  with pauses, starving thread-per-connection servers;
- :func:`connection_churn` — a fresh TCP connection per request, with
  an optional fraction aborted mid-send (client gave up).

Everything random — arrival gaps, row choices, abort picks — flows
through one seeded generator (:func:`repro.rng.check_random_state`,
RL001), so a workload is a pure function of ``(shape, seed)``:
:func:`arrival_times` returns the exact same schedule on every run, and
the transport-equivalence tests rely on replaying one workload against
two servers byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "WorkloadShape",
    "open_loop",
    "closed_loop",
    "retry_storm",
    "flash_crowd",
    "slow_client",
    "connection_churn",
    "arrival_times",
]


@dataclasses.dataclass(frozen=True)
class WorkloadShape:
    """One workload: an arrival process plus client behaviour knobs.

    ``kind`` is ``"open"`` (scheduled arrivals; ``n_requests`` total)
    or ``"closed"`` (``clients`` workers each issuing ``n_requests``
    back-to-back with ``think_time`` pauses).  The dribble/churn/abort
    fields only apply when the driver speaks real sockets.
    """

    name: str
    kind: str = "open"
    n_requests: int = 100
    rate: float = 200.0
    peak_rate: float | None = None
    burst_start: float = 0.4
    burst_fraction: float = 0.0
    clients: int = 4
    think_time: float = 0.0
    rows_per_request: int = 1
    retry_on_shed: bool = False
    max_retries: int = 0
    backoff: float = 0.0
    request_timeout: float = 10.0
    dribble_chunk: int | None = None
    dribble_delay: float = 0.0
    new_connection_per_request: bool = False
    abort_fraction: float = 0.0

    def __post_init__(self):
        if self.kind not in ("open", "closed"):
            raise ValidationError(f"kind must be 'open' or 'closed', got {self.kind!r}")
        if self.n_requests < 1 or self.clients < 1 or self.rows_per_request < 1:
            raise ValidationError("n_requests, clients, and rows_per_request must be >= 1")
        if self.rate <= 0 or (self.peak_rate is not None and self.peak_rate <= 0):
            raise ValidationError("arrival rates must be positive")
        if not 0.0 <= self.burst_fraction < 1.0 or not 0.0 <= self.burst_start < 1.0:
            raise ValidationError("burst_start/burst_fraction must be in [0, 1)")
        if not 0.0 <= self.abort_fraction <= 1.0:
            raise ValidationError(f"abort_fraction must be in [0, 1], got {self.abort_fraction}")
        if self.request_timeout <= 0:
            raise ValidationError(f"request_timeout must be positive, got {self.request_timeout}")

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def open_loop(n_requests: int, rate: float, **kwargs) -> WorkloadShape:
    """Poisson open-loop arrivals at ``rate`` requests/second."""
    return WorkloadShape(name="open_loop", kind="open", n_requests=n_requests, rate=rate, **kwargs)


def closed_loop(n_requests: int, clients: int, think_time: float = 0.0, **kwargs) -> WorkloadShape:
    """``clients`` workers, each sending ``n_requests`` with ``think_time`` pauses."""
    return WorkloadShape(
        name="closed_loop",
        kind="closed",
        n_requests=n_requests,
        clients=clients,
        think_time=think_time,
        **kwargs,
    )


def retry_storm(n_requests: int, rate: float, *, max_retries: int = 5, backoff: float = 0.002, **kwargs) -> WorkloadShape:
    """Open loop where shed requests retry with backoff (each retry offered anew)."""
    return WorkloadShape(
        name="retry_storm",
        kind="open",
        n_requests=n_requests,
        rate=rate,
        retry_on_shed=True,
        max_retries=max_retries,
        backoff=backoff,
        **kwargs,
    )


def flash_crowd(
    n_requests: int,
    rate: float,
    peak_rate: float,
    *,
    burst_start: float = 0.4,
    burst_fraction: float = 0.4,
    **kwargs,
) -> WorkloadShape:
    """Open loop with a mid-run burst: ``rate`` → ``peak_rate`` → ``rate``."""
    return WorkloadShape(
        name="flash_crowd",
        kind="open",
        n_requests=n_requests,
        rate=rate,
        peak_rate=peak_rate,
        burst_start=burst_start,
        burst_fraction=burst_fraction,
        **kwargs,
    )


def slow_client(
    n_requests: int, rate: float, *, dribble_chunk: int = 16, dribble_delay: float = 0.005, **kwargs
) -> WorkloadShape:
    """Open loop whose request bytes dribble in ``dribble_chunk``-byte writes."""
    return WorkloadShape(
        name="slow_client",
        kind="open",
        n_requests=n_requests,
        rate=rate,
        dribble_chunk=dribble_chunk,
        dribble_delay=dribble_delay,
        **kwargs,
    )


def connection_churn(n_requests: int, rate: float, *, abort_fraction: float = 0.0, **kwargs) -> WorkloadShape:
    """Open loop with a fresh TCP connection per request; some aborted mid-send."""
    return WorkloadShape(
        name="connection_churn",
        kind="open",
        n_requests=n_requests,
        rate=rate,
        new_connection_per_request=True,
        abort_fraction=abort_fraction,
        **kwargs,
    )


def arrival_times(shape: WorkloadShape, rng: np.random.Generator) -> np.ndarray:
    """The seeded arrival schedule (seconds from run start), non-decreasing.

    Open-loop gaps are exponential with mean ``1/rate``; a flash-crowd
    shape draws its burst segment at ``peak_rate`` instead.  Closed-loop
    shapes have no schedule (arrivals are reply-driven) and return an
    empty array.

    Parameters
    ----------
    shape:
        The workload to schedule.
    rng:
        A seeded generator (``check_random_state`` output); consumed.
    """
    if shape.kind != "open":
        return np.empty(0, dtype=np.float64)
    n = shape.n_requests
    if shape.peak_rate is None or shape.burst_fraction == 0.0:
        gaps = rng.exponential(1.0 / shape.rate, size=n)
        return np.cumsum(gaps)
    n_burst = int(round(n * shape.burst_fraction))
    n_before = int(round(n * shape.burst_start))
    n_before = min(n_before, n - n_burst)
    n_after = n - n_before - n_burst
    gaps = np.concatenate(
        [
            rng.exponential(1.0 / shape.rate, size=n_before),
            rng.exponential(1.0 / shape.peak_rate, size=n_burst),
            rng.exponential(1.0 / shape.rate, size=n_after),
        ]
    )
    return np.cumsum(gaps)
