"""Load generation and fault injection for the serving layer (DESIGN.md §loadgen).

The north star is serving heavy traffic from millions of users; this
package is how the repo *proves* behaviour under that traffic instead of
asserting it in prose.  Three modules, layered strictly above
:mod:`repro.serve` (RL002):

- :mod:`~repro.loadgen.workloads` — deterministic, seeded workload
  shapes: open/closed-loop arrivals, retry storms, flash crowds, slow
  (byte-dribbling) clients, connection churn;
- :mod:`~repro.loadgen.driver` — replays a shape against an in-process
  service or a real HTTP server over raw sockets, recording an outcome
  for every offered attempt;
- :mod:`~repro.loadgen.report` — :class:`LoadReport` aggregation
  (counts, p50/p95/p99, per-second series) and the invariant checkers:
  the zero-drop accounting identity, shed-rate bounds, p99 ceilings.

``python -m repro loadtest`` exposes the harness on the CLI;
``benchmarks/bench_loadgen.py`` asserts the serving invariants under
overload and records them in ``BENCH_loadgen.json``.
"""

from .driver import HttpTarget, InProcessTarget, run_workload
from .report import OUTCOMES, Attempt, LoadReport, check_accounting, check_p99, check_shed_rate
from .workloads import (
    WorkloadShape,
    arrival_times,
    closed_loop,
    connection_churn,
    flash_crowd,
    open_loop,
    retry_storm,
    slow_client,
)

__all__ = [
    "OUTCOMES",
    "Attempt",
    "LoadReport",
    "check_accounting",
    "check_p99",
    "check_shed_rate",
    "WorkloadShape",
    "arrival_times",
    "open_loop",
    "closed_loop",
    "retry_storm",
    "flash_crowd",
    "slow_client",
    "connection_churn",
    "InProcessTarget",
    "HttpTarget",
    "run_workload",
]
