"""Drive a serving target with a workload shape; account for every attempt.

Two targets, one driver:

- :class:`InProcessTarget` calls a :class:`~repro.serve.service.ServeService`
  (or anything with its ``predict``) directly — no sockets, so it
  isolates engine behaviour (shedding, batching, timeouts) from
  transport behaviour;
- :class:`HttpTarget` speaks real TCP to a running HTTP server, with
  the socket-level misbehaviour the shapes call for: byte-dribbled
  sends (slow clients), a fresh connection per request (churn), and
  deterministic mid-send aborts.

The driver is deterministic in *what* it sends: the arrival schedule,
each request's rows, and which attempts abort are all drawn up front
from one seeded generator, so replaying ``(target_a, X, shape, seed)``
and ``(target_b, X, shape, seed)`` offers byte-identical traffic to both
targets.  What the driver *measures* (latencies, which attempts shed) is
real concurrent execution, not simulation — that is the point.

Every attempt ends in exactly one :data:`~repro.loadgen.report.OUTCOMES`
bucket; :func:`run_workload` returns the aggregated
:class:`~repro.loadgen.report.LoadReport`.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

import numpy as np

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from ..rng import check_random_state
from ..runtime.clock import Stopwatch
from .report import Attempt, LoadReport
from .workloads import WorkloadShape, arrival_times

__all__ = ["InProcessTarget", "HttpTarget", "run_workload"]

#: HTTP status → attempt outcome (anything else is "failed").
_STATUS_OUTCOMES = {200: "completed", 503: "shed", 504: "timed_out"}


class InProcessTarget:
    """Drive a :class:`ServeService` directly — no sockets, pure engine behaviour."""

    def __init__(self, service):
        self.service = service

    def request(self, rows, *, timeout: float, plan: dict[str, Any]) -> str:
        """One attempt; socket-level ``plan`` fields are ignored in-process."""
        try:
            self.service.predict(rows, timeout=timeout)
            return "completed"
        except BackpressureError:
            return "shed"
        except RequestTimeoutError:
            return "timed_out"
        except (ValidationError, ServeError, OSError):
            return "failed"


class HttpTarget:
    """Drive a running HTTP server over raw TCP sockets.

    Connections are pooled per driver thread (HTTP/1.1 keep-alive)
    unless the plan asks for churn.  The socket layer honours the
    shape's misbehaviour knobs: ``dribble_chunk``/``dribble_delay``
    split the request bytes into paced writes, and ``abort`` sends half
    the request then closes — the server must survive both.
    """

    def __init__(self, url: str, *, path: str = "/predict", connect_timeout: float = 5.0):
        without_scheme = url.split("//", 1)[-1].rstrip("/")
        host, _, port = without_scheme.partition(":")
        self.host = host
        self.port = int(port)
        self.path = path
        self.connect_timeout = connect_timeout
        self._local = threading.local()

    # -- socket plumbing ---------------------------------------------------

    def _connect(self, timeout: float) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.connect_timeout)
        sock.settimeout(timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return sock

    def _pooled(self, timeout: float) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = self._connect(timeout)
            self._local.sock = sock
        else:
            sock.settimeout(timeout)
        return sock

    def _drop_pooled(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            self._local.sock = None
            try:
                sock.close()
            except OSError:
                pass

    @staticmethod
    def _send(sock: socket.socket, payload: bytes, plan: dict[str, Any]) -> None:
        chunk = plan.get("dribble_chunk")
        if not chunk:
            sock.sendall(payload)
            return
        delay = plan.get("dribble_delay", 0.0)
        for start in range(0, len(payload), chunk):
            sock.sendall(payload[start : start + chunk])
            if delay > 0:
                threading.Event().wait(delay)

    @staticmethod
    def _read_response(sock: socket.socket) -> tuple[int, bytes, bool]:
        """Read one full response; returns (status, body, keep_alive)."""
        buffer = bytearray()
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-response")
            buffer += chunk
        split = buffer.find(b"\r\n\r\n")
        head = bytes(buffer[:split]).decode("latin-1").split("\r\n")
        status = int(head[0].split(" ", 2)[1])
        headers = {}
        for line in head[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = buffer[split + 4 :]
        while len(body) < length:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            body += chunk
        keep_alive = headers.get("connection", "").lower() != "close"
        return status, bytes(body[:length]), keep_alive

    # -- the attempt -------------------------------------------------------

    def exchange(self, rows, *, timeout: float, plan: dict[str, Any]) -> tuple[int, bytes]:
        """Send one request and return ``(status, body)``; raises on transport errors."""
        body = json.dumps({"rows": rows}).encode("utf-8")
        request = (
            f"POST {self.path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1") + body
        fresh = bool(plan.get("new_connection"))
        sock = self._connect(timeout) if fresh else self._pooled(timeout)
        try:
            if plan.get("abort"):
                sock.sendall(request[: max(1, len(request) // 2)])
                raise ConnectionAbortedError("client aborted mid-request (by plan)")
            self._send(sock, request, plan)
            status, payload, keep_alive = self._read_response(sock)
        except BaseException:
            if fresh:
                try:
                    sock.close()
                except OSError:
                    pass
            else:
                self._drop_pooled()
            raise
        if fresh or not keep_alive:
            if not fresh:
                self._drop_pooled()
            else:
                sock.close()
        return status, payload

    def request(self, rows, *, timeout: float, plan: dict[str, Any]) -> str:
        """One attempt, mapped onto the outcome buckets."""
        try:
            status, _body = self.exchange(rows, timeout=timeout, plan=plan)
        except socket.timeout:
            return "timed_out"
        except (OSError, ValueError, IndexError):
            return "failed"
        return _STATUS_OUTCOMES.get(status, "failed")


def run_workload(
    target,
    X,
    shape: WorkloadShape,
    *,
    seed: int = 0,
) -> LoadReport:
    """Replay ``shape`` against ``target`` drawing rows from ``X``; report everything.

    Parameters
    ----------
    target:
        An :class:`InProcessTarget` or :class:`HttpTarget` (anything
        with their ``request`` signature).
    X:
        ``(n, n_features)`` pool of request rows; each request samples a
        contiguous ``rows_per_request`` window, seeded.
    shape:
        The workload to run.
    seed:
        Seeds the arrival schedule, row choices, and abort picks — the
        offered traffic is a pure function of ``(X, shape, seed)``.
    """
    rng = check_random_state(seed)
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] < shape.rows_per_request:
        raise ValidationError(
            f"X must be 2-D with at least rows_per_request={shape.rows_per_request} rows, got {X.shape}"
        )
    # All randomness is consumed here, before any thread starts: the
    # traffic is fixed, only its timing outcomes are measured live.
    schedule = arrival_times(shape, rng)
    total = shape.n_requests if shape.kind == "open" else shape.clients * shape.n_requests
    starts = rng.integers(0, X.shape[0] - shape.rows_per_request + 1, size=total)
    aborts = (
        rng.random(total) < shape.abort_fraction
        if shape.abort_fraction > 0
        else np.zeros(total, dtype=bool)
    )

    attempts: list[Attempt] = []
    attempts_lock = threading.Lock()
    cursor = {"next": 0}
    watch = Stopwatch()

    def plan_for(index: int) -> dict[str, Any]:
        return {
            "dribble_chunk": shape.dribble_chunk,
            "dribble_delay": shape.dribble_delay,
            "new_connection": shape.new_connection_per_request,
            "abort": bool(aborts[index]),
        }

    def fire(index: int) -> None:
        rows = X[starts[index] : starts[index] + shape.rows_per_request].tolist()
        plan = plan_for(index)
        tries = 0
        while True:
            offered_at = watch.elapsed()
            attempt_watch = Stopwatch()
            outcome = target.request(rows, timeout=shape.request_timeout, plan=plan)
            with attempts_lock:
                attempts.append(Attempt(offered_at, outcome, attempt_watch.elapsed()))
            if outcome == "shed" and shape.retry_on_shed and tries < shape.max_retries:
                tries += 1
                if shape.backoff > 0:
                    threading.Event().wait(shape.backoff)
                continue
            return

    def open_worker() -> None:
        while True:
            with attempts_lock:
                index = cursor["next"]
                if index >= shape.n_requests:
                    return
                cursor["next"] = index + 1
            delay = schedule[index] - watch.elapsed()
            if delay > 0:
                threading.Event().wait(delay)
            fire(index)

    def closed_worker(client: int) -> None:
        for step in range(shape.n_requests):
            fire(client * shape.n_requests + step)
            if shape.think_time > 0:
                threading.Event().wait(shape.think_time)

    if shape.kind == "open":
        workers = [
            threading.Thread(target=open_worker, name=f"loadgen-{i}", daemon=True)
            for i in range(shape.clients)
        ]
    else:
        workers = [
            threading.Thread(target=closed_worker, args=(i,), name=f"loadgen-{i}", daemon=True)
            for i in range(shape.clients)
        ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    return LoadReport.from_attempts(
        attempts,
        duration=watch.elapsed(),
        workload={"seed": seed, **shape.to_json()},
    )
