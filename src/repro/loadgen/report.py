"""Load reports and the invariants that turn a load test into a test.

Every attempt the driver makes ends in exactly one of four outcomes —
``completed`` (got a 200), ``shed`` (the service refused it, 503),
``timed_out`` (no reply in time, 504 or a client-side deadline), or
``failed`` (transport error, aborted send, unexpected status).  The
accounting identity

    ``offered == completed + shed + timed_out + failed``

is structural: an attempt that vanishes without an outcome is a dropped
request, which is precisely the bug class this harness exists to catch.
:func:`check_accounting` asserts the identity (and, by default, that
nothing landed in ``failed`` — overload must shed or time out, never
drop); :func:`check_shed_rate` and :func:`check_p99` bound the other two
promises a serving layer makes under load.

Checkers raise :class:`~repro.exceptions.LoadTestError` so benchmark
scripts and tests fail loudly with the offending numbers in the message.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

import numpy as np

from ..exceptions import LoadTestError, ValidationError

__all__ = ["OUTCOMES", "Attempt", "LoadReport", "check_accounting", "check_shed_rate", "check_p99"]

#: The exhaustive, mutually exclusive ways one attempt can end.
OUTCOMES = ("completed", "shed", "timed_out", "failed")

#: Quantiles a report's latency summary carries (matches serve.metrics).
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclasses.dataclass(frozen=True)
class Attempt:
    """One request attempt: when it was offered, how it ended, how long it took.

    ``offered_at`` and ``latency`` are seconds relative to the run start
    (driver stopwatch time, not wall-clock timestamps).
    """

    offered_at: float
    outcome: str
    latency: float = 0.0

    def __post_init__(self):
        if self.outcome not in OUTCOMES:
            raise ValidationError(f"outcome must be one of {OUTCOMES}, got {self.outcome!r}")
        if self.offered_at < 0 or self.latency < 0:
            raise ValidationError(
                f"offered_at/latency must be >= 0, got {self.offered_at}/{self.latency}"
            )


@dataclasses.dataclass(frozen=True)
class LoadReport:
    """The complete accounting of one workload run."""

    workload: dict[str, Any]
    duration: float
    offered: int
    completed: int
    shed: int
    timed_out: int
    failed: int
    latency: dict[str, float | int]
    per_second: list[dict[str, int]]

    @classmethod
    def from_attempts(
        cls,
        attempts: Iterable[Attempt] | Sequence[Attempt],
        *,
        duration: float,
        workload: dict[str, Any] | None = None,
    ) -> "LoadReport":
        """Aggregate raw attempts into counts, quantiles, and a time series.

        Latency quantiles are computed over *completed* attempts only
        (:func:`numpy.quantile`, linear interpolation — the same
        definition :mod:`repro.serve.metrics` reports, so client-side
        and server-side percentiles are comparable).
        """
        attempts = list(attempts)
        counts = dict.fromkeys(OUTCOMES, 0)
        for attempt in attempts:
            counts[attempt.outcome] += 1
        done = np.array(
            [attempt.latency for attempt in attempts if attempt.outcome == "completed"],
            dtype=np.float64,
        )
        latency: dict[str, float | int] = {"count": int(done.size)}
        if done.size:
            latency["mean"] = float(done.mean())
            latency["max"] = float(done.max())
            for label, q in _QUANTILES:
                latency[label] = float(np.quantile(done, q))
        last_second = max((int(attempt.offered_at) for attempt in attempts), default=-1)
        per_second = [
            {"second": second, **dict.fromkeys(OUTCOMES, 0)} for second in range(last_second + 1)
        ]
        for attempt in attempts:
            per_second[int(attempt.offered_at)][attempt.outcome] += 1
        return cls(
            workload=dict(workload or {}),
            duration=float(duration),
            offered=len(attempts),
            completed=counts["completed"],
            shed=counts["shed"],
            timed_out=counts["timed_out"],
            failed=counts["failed"],
            latency=latency,
            per_second=per_second,
        )

    # -- derived views -----------------------------------------------------

    @property
    def shed_rate(self) -> float:
        """Fraction of offered attempts the service shed (0 when idle)."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of run duration."""
        return self.completed / self.duration if self.duration > 0 else 0.0

    def balanced(self) -> bool:
        """True iff the zero-drop accounting identity holds."""
        return self.offered == self.completed + self.shed + self.timed_out + self.failed

    def to_json(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["shed_rate"] = self.shed_rate
        out["throughput_rps"] = self.throughput_rps
        return out


def check_accounting(report: LoadReport, *, allow_failed: bool = False) -> None:
    """Assert the zero-drop identity: every offered attempt has an outcome.

    With ``allow_failed=False`` (default) also asserts ``failed == 0`` —
    under overload a healthy service sheds or times requests out; a
    transport-level failure is a drop in disguise.
    """
    if not report.balanced():
        raise LoadTestError(
            f"accounting identity violated: offered={report.offered} != "
            f"completed={report.completed} + shed={report.shed} + "
            f"timed_out={report.timed_out} + failed={report.failed}"
        )
    if not allow_failed and report.failed:
        raise LoadTestError(f"{report.failed} attempt(s) failed outright (drops in disguise)")


def check_shed_rate(report: LoadReport, *, max_rate: float | None = None, min_rate: float | None = None) -> None:
    """Assert the shed fraction sits inside ``[min_rate, max_rate]``.

    ``min_rate`` is how an overload test asserts backpressure actually
    engaged; ``max_rate`` is how a nominal-load test asserts it did not.
    """
    rate = report.shed_rate
    if max_rate is not None and rate > max_rate:
        raise LoadTestError(f"shed rate {rate:.3f} exceeds bound {max_rate:.3f}")
    if min_rate is not None and rate < min_rate:
        raise LoadTestError(f"shed rate {rate:.3f} below expected floor {min_rate:.3f}")


def check_p99(report: LoadReport, ceiling: float) -> None:
    """Assert completed-request p99 latency is at most ``ceiling`` seconds."""
    if not report.completed:
        raise LoadTestError("no completed requests; p99 is undefined")
    p99 = float(report.latency["p99"])
    if p99 > ceiling:
        raise LoadTestError(f"p99 latency {p99:.4f}s exceeds ceiling {ceiling:.4f}s")
