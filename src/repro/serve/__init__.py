"""Online serving for paper-grown AutoML artifacts (DESIGN.md §serve).

The paper's Section-4 proposal is a *deployed* domain-customized AutoML
loop: models serve traffic, the interpretable-feedback artifact rides
along, and uncertain points flow back to the operator for labeling.
This package is that loop's serving side, stdlib-only, in five pieces:

- :mod:`~repro.serve.registry` — versioned :class:`ModelRegistry` over
  the content-addressed artifact cache, with atomic promote/rollback;
- :mod:`~repro.serve.engine` — micro-batching :class:`InferenceEngine`
  with a bounded queue, shed-on-overload backpressure, and per-request
  timeouts;
- :mod:`~repro.serve.monitor` — :class:`UncertaintyMonitor` flagging
  points inside the registered feedback subspace or with live committee
  disagreement, feeding a bounded :class:`LabelingQueue`;
- :mod:`~repro.serve.service` / :mod:`~repro.serve.http` /
  :mod:`~repro.serve.client` — one façade, two transports (in-process
  and threaded-HTTP JSON), identical response shapes;
- :mod:`~repro.serve.metrics` — thread-safe counters and quantile
  histograms behind ``/metrics``.

``python -m repro serve`` and ``python -m repro registry`` expose the
package on the CLI.
"""

from .async_http import AsyncHTTPServer, serve_async_http
from .client import HttpClient, InProcessClient
from .engine import InferenceEngine, Prediction, ServeConfig, ShadowMirror
from .http import ServeHTTPServer, serve_http
from .metrics import Counter, Histogram, MetricsRegistry
from .monitor import LabelingQueue, UncertaintyMonitor, committee_disagreement
from .registry import ModelBundle, ModelRegistry, default_registry_dir
from .router import ModelRouter, RequestDispatcher
from .service import ServeService, render_prediction

__all__ = [
    "ModelBundle",
    "ModelRegistry",
    "default_registry_dir",
    "ServeConfig",
    "InferenceEngine",
    "Prediction",
    "ShadowMirror",
    "UncertaintyMonitor",
    "LabelingQueue",
    "committee_disagreement",
    "ServeService",
    "render_prediction",
    "ServeHTTPServer",
    "serve_http",
    "AsyncHTTPServer",
    "serve_async_http",
    "ModelRouter",
    "RequestDispatcher",
    "InProcessClient",
    "HttpClient",
    "MetricsRegistry",
    "Counter",
    "Histogram",
]
