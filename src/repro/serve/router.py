"""Multi-model routing and the transport-shared request dispatcher.

Two pieces that together let one HTTP listener serve many registered
models:

- :class:`ModelRouter` maps model names to per-model
  :class:`~repro.serve.service.ServeService` instances (each with its own
  micro-batching engine and bounded queue, so one hot model shedding
  cannot starve another) and optionally splits a name's predict traffic
  between the promoted *primary* and a weighted *canary* version.  The
  split is read from the registry manifest
  (:meth:`~repro.serve.registry.ModelRegistry.set_canary`) and selection
  is a deterministic error-accumulator — ``weight`` is added per request
  and the canary serves on overflow — so a traffic trace splits
  identically on every run (RL001: no serving-path randomness).

- :class:`RequestDispatcher` is the one place HTTP semantics live: route
  parsing (``/predict``, ``/predict/<name>``, ``/feedback[/<name>]``,
  ``/healthz``, ``/metrics``), payload validation, and the typed-error →
  status mapping (400/404/503/504/500).  Both the threaded and the async
  transport call into it, so the two servers cannot drift apart — the
  transport-equivalence tests assert their payloads are *bitwise*
  identical, and sharing this object is why that holds.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from ..runtime.clock import Deadline
from .engine import ServeConfig
from .registry import ModelRegistry
from .service import ServeService

__all__ = ["ModelRouter", "RequestDispatcher"]


class RouteNotFound(Exception):
    """Transport-internal signal: this path or model name maps to nothing.

    Deliberately *not* a :class:`~repro.exceptions.ReproError` — it never
    escapes the dispatcher/transport layer; it only carries the 404
    message between route parsing and response rendering.
    """


class _Route:
    """One model name's serving state: a primary and an optional canary."""

    __slots__ = ("primary", "canary", "weight", "canary_version", "_accumulator", "_lock")

    def __init__(self, primary: ServeService):
        self.primary = primary
        self.canary: ServeService | None = None
        self.weight = 0.0
        self.canary_version: int | None = None
        self._accumulator = 0.0
        self._lock = threading.Lock()

    def pick(self) -> ServeService:
        """Deterministically pick primary or canary for the next request."""
        with self._lock:
            if self.canary is None:
                return self.primary
            self._accumulator += self.weight
            if self._accumulator >= 1.0 - 1e-12:
                self._accumulator -= 1.0
                return self.canary
            return self.primary


class ModelRouter:
    """Routes named predict/feedback traffic across per-model services.

    Parameters
    ----------
    services:
        Mapping of model name → :class:`ServeService`.  Each service
        keeps its own engine, queue, and metrics; the router only
        decides which one a request reaches.
    """

    def __init__(self, services: dict[str, ServeService]):
        if not services:
            raise ValidationError("ModelRouter needs at least one service")
        self._routes = {name: _Route(service) for name, service in services.items()}

    @classmethod
    def from_registry(
        cls,
        names: list[str] | None = None,
        *,
        directory: Path | str | None = None,
        config: ServeConfig | None = None,
    ) -> "ModelRouter":
        """Build a router serving every named model's promoted version.

        ``names=None`` serves everything registered.  A manifest canary
        split (:meth:`ModelRegistry.set_canary`) becomes a live weighted
        canary service for that name.
        """
        registry = ModelRegistry(directory)
        if names is None:
            names = registry.names()
        router = cls(
            {
                name: ServeService.from_registry(name, directory=directory, config=config)
                for name in names
            }
        )
        for name in names:
            split = registry.canary(name)
            if split is not None:
                canary = ServeService.from_registry(
                    name, directory=directory, version=split["version"], config=config
                )
                router.set_canary(name, canary, split["weight"])
        return router

    # -- routing -----------------------------------------------------------

    def _route(self, name: str | None) -> _Route:
        if name is None:
            if len(self._routes) == 1:
                return next(iter(self._routes.values()))
            raise RouteNotFound(
                f"bare /predict is ambiguous with {len(self._routes)} models; "
                f"use /predict/<name> with one of {sorted(self._routes)}"
            )
        route = self._routes.get(name)
        if route is None:
            raise RouteNotFound(f"no model route {name!r}; serving: {sorted(self._routes)}")
        return route

    def pick(self, name: str | None = None) -> ServeService:
        """The service that handles the next predict for ``name`` (canary-aware)."""
        return self._route(name).pick()

    def primary(self, name: str | None = None) -> ServeService:
        """The primary (promoted) service for ``name`` — feedback/admin traffic."""
        return self._route(name).primary

    def names(self) -> list[str]:
        return sorted(self._routes)

    # -- canary lifecycle --------------------------------------------------

    def set_canary(self, name: str, service: ServeService, weight: float) -> None:
        """Start splitting ``weight`` of ``name``'s predict traffic to ``service``."""
        if not 0.0 < weight < 1.0:
            raise ValidationError(f"canary weight must be in (0, 1), got {weight}")
        route = self._route(name)
        route.canary = service
        route.canary_version = service.version
        route.weight = float(weight)

    def clear_canary(self, name: str) -> ServeService | None:
        """Stop the split; returns the detached canary service (caller closes)."""
        route = self._route(name)
        canary, route.canary = route.canary, None
        route.weight = 0.0
        route.canary_version = None
        return canary

    # -- aggregate views ---------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        models = {}
        for name in sorted(self._routes):
            route = self._routes[name]
            health = route.primary.healthz()
            if route.canary is not None:
                health["canary"] = {"version": route.canary_version, "weight": route.weight}
            models[name] = health
        return {"status": "ok", "models": models}

    def metrics(self) -> dict[str, Any]:
        models = {}
        for name in sorted(self._routes):
            route = self._routes[name]
            entry: dict[str, Any] = {"primary": route.primary.metrics()}
            if route.canary is not None:
                entry["canary"] = route.canary.metrics()
                entry["canary_weight"] = route.weight
                entry["canary_version"] = route.canary_version
            models[name] = entry
        return {"models": models}

    # -- lifecycle ---------------------------------------------------------

    def quiesce(self, timeout: float | None = None) -> bool:
        """Quiesce every service (primaries and canaries) within ``timeout``."""
        deadline = Deadline(timeout)
        done = True
        for route in self._routes.values():
            done = route.primary.quiesce(deadline.remaining()) and done
            if route.canary is not None:
                done = route.canary.quiesce(deadline.remaining()) and done
        return done

    def close(self) -> None:
        for route in self._routes.values():
            route.primary.close()
            if route.canary is not None:
                route.canary.close()

    def __enter__(self) -> "ModelRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Typed-error → HTTP status, most specific first (the response contract).
_ERROR_STATUS = (
    (ValidationError, 400),
    (BackpressureError, 503),
    (RequestTimeoutError, 504),
    (ServeError, 500),
)


class RequestDispatcher:
    """HTTP semantics — routing, validation, error mapping — sans sockets.

    ``target`` is either one :class:`ServeService` (single-model, the
    PR-5 surface) or a :class:`ModelRouter` (multi-model with canary
    splits).  Transports hand paths and parsed JSON in and get
    ``(status, payload)`` out; they never interpret errors themselves.
    """

    def __init__(self, target: ServeService | ModelRouter):
        self.target = target
        self.loop: Any | None = None

    def attach_loop(self, loop: Any) -> None:
        """Expose a retraining loop (``tick()``/``status()``) over the wire.

        Duck-typed on purpose: the serve layer sits *below*
        :mod:`repro.loop` in the import DAG, so the loop object arrives
        from above and the dispatcher only calls its two JSON-shaped
        methods.  Attached on the dispatcher — not a transport — so the
        threaded and async servers expose identical ``/loop/*`` routes.
        """
        self.loop = loop

    # -- route/payload parsing (shared by both transports) -----------------

    def parse_post_route(self, path: str) -> tuple[str, str | None]:
        """``/predict[/<name>]``, ``/feedback[/<name>]``, ``/loop/tick`` → ``(kind, name)``."""
        parts = path.rstrip("/").split("/")
        if len(parts) == 2 and parts[1] in ("predict", "feedback"):
            return parts[1], None
        if len(parts) == 3 and parts[1] == "loop" and parts[2] == "tick":
            return "loop", None
        if len(parts) == 3 and parts[1] in ("predict", "feedback") and parts[2]:
            return parts[1], parts[2]
        raise RouteNotFound(f"no route {path!r}")

    def service_for(self, name: str | None, *, pick: bool = False) -> ServeService:
        """Resolve a model name to a service; canary-aware when ``pick``."""
        if isinstance(self.target, ModelRouter):
            return self.target.pick(name) if pick else self.target.primary(name)
        if name is not None and name != self.target.bundle.name:
            raise RouteNotFound(f"no model route {name!r}; serving: [{self.target.bundle.name!r}]")
        return self.target

    @staticmethod
    def rows_of(payload: dict) -> Any:
        rows = payload.get("rows")
        if rows is None:
            raise ValidationError('predict requests need a "rows" field: {"rows": [[...], ...]}')
        return rows

    @staticmethod
    def limit_of(payload: dict) -> int | None:
        limit = payload.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ValidationError(f'"limit" must be a non-negative integer, got {limit!r}')
        return limit

    # -- responses ---------------------------------------------------------

    @staticmethod
    def not_found(message: str) -> tuple[int, dict]:
        return 404, {"error": message, "type": "NotFound"}

    @staticmethod
    def error_response(error: BaseException) -> tuple[int, dict]:
        """The typed-error contract: one (status, JSON body) per error class."""
        for kind, status in _ERROR_STATUS:
            if isinstance(error, kind):
                return status, {"error": str(error), "type": type(error).__name__}
        raise error

    def get(self, path: str) -> tuple[int, dict]:
        if path == "/healthz":
            return 200, self.target.healthz()
        if path == "/metrics":
            return 200, self.target.metrics()
        if path == "/loop/status" and self.loop is not None:
            return 200, self.loop.status()
        return self.not_found(f"no route {path!r}")

    def post(self, path: str, payload: dict) -> tuple[int, dict]:
        """Blocking POST handling — the threaded transport's whole brain."""
        try:
            kind, name = self.parse_post_route(path)
            if kind == "predict":
                rows = self.rows_of(payload)
                return 200, self.service_for(name, pick=True).predict(rows)
            if kind == "loop":
                if self.loop is None:
                    raise RouteNotFound("no retraining loop attached to this server")
                return 200, self.loop.tick()
            limit = self.limit_of(payload)
            return 200, self.service_for(name).feedback(limit)
        except RouteNotFound as error:
            return self.not_found(str(error))
        except (ValidationError, ServeError) as error:
            return self.error_response(error)
