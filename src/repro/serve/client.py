"""Clients for the serving API: in-process and over HTTP.

Both speak the same four operations with the same response shapes, so a
test written against :class:`InProcessClient` also documents the HTTP
contract.  :class:`InProcessClient` calls the :class:`ServeService`
directly (no sockets, no serialization) — it is the harness the
concurrency and determinism tests hammer.  :class:`HttpClient` wraps the
JSON API with :mod:`urllib` (stdlib-only), translating the error-status
contract back into the typed exceptions (``503`` →
:class:`BackpressureError`, ``504`` → :class:`RequestTimeoutError`,
``400`` → :class:`ValidationError`).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from .service import ServeService

__all__ = ["InProcessClient", "HttpClient"]


class InProcessClient:
    """The serving API without a network: direct calls into the service."""

    def __init__(self, service: ServeService):
        self.service = service

    def predict(self, rows, *, timeout: float | None = None) -> dict[str, Any]:
        return self.service.predict(rows, timeout=timeout)

    def feedback(self, limit: int | None = None) -> dict[str, Any]:
        return self.service.feedback(limit)

    def healthz(self) -> dict[str, Any]:
        return self.service.healthz()

    def metrics(self) -> dict[str, Any]:
        return self.service.metrics()


_STATUS_ERRORS = {
    400: ValidationError,
    503: BackpressureError,
    504: RequestTimeoutError,
}


class HttpClient:
    """Stdlib-urllib client for a running :class:`ServeHTTPServer`."""

    def __init__(self, url: str, *, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: dict | None = None) -> dict[str, Any]:
        if payload is None:
            request = urllib.request.Request(self.url + path, method="GET")
        else:
            body = json.dumps(payload).encode("utf-8")
            request = urllib.request.Request(
                self.url + path,
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = self._error_detail(error)
            raise _STATUS_ERRORS.get(error.code, ServeError)(detail) from None

    @staticmethod
    def _error_detail(error: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(error.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:
            return f"HTTP {error.code}"

    def predict(self, rows) -> dict[str, Any]:
        return self._request("/predict", {"rows": rows})

    def feedback(self, limit: int | None = None) -> dict[str, Any]:
        return self._request("/feedback", {} if limit is None else {"limit": limit})

    def healthz(self) -> dict[str, Any]:
        return self._request("/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("/metrics")
