"""The model registry: fitted ensembles published for online serving.

The paper's Section-4 proposal deploys the AutoML artifact, it does not
just evaluate it offline.  The registry is the boundary between the two
worlds: training code *registers* a fitted :class:`AutoMLClassifier`
together with everything the online loop needs precomputed — the
Within-ALE disagreement profiles and the feedback subspace region (the
paper's ``∪ᵢ Aᵢx ≤ bᵢ``) — and the serving engine *loads* one immutable,
versioned :class:`ModelBundle` by name.

Storage splits responsibilities the same way the runtime does:

- **artifacts** live in a content-addressed :class:`ArtifactCache`
  (``cache.publish``/``cache.fetch``): a bundle's key is the SHA-256 of
  its pickled bytes, so entries are immutable, deduplicated, and
  integrity-checkable;
- **names** live in a single ``manifest.json`` mapping model name →
  version → artifact key plus summary metadata, rewritten atomically
  (temp file + ``os.replace``) so a crash never leaves a half-written
  manifest and readers always see a complete one.

Versions are monotonically increasing integers per name.  ``promote``
flips which version serves (recording the previous one), and
``rollback`` flips back — both are one atomic manifest rewrite, so a
bad model is un-deployed in O(1) without touching artifacts.

No wall clock and no RNG anywhere: manifests carry version counters and
content hashes, not timestamps, so registry state is a pure function of
the register/promote calls that produced it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core.feedback import AleFeedback, FeedbackReport, within_ale_committee
from ..exceptions import RegistryError, ValidationError
from ..featurespace import FeatureDomain
from ..runtime.cache import ArtifactCache

__all__ = ["ModelBundle", "ModelRegistry", "default_registry_dir"]

_ENV_VAR = "REPRO_REGISTRY_DIR"

#: Manifest format version; bump when the manifest schema changes.
MANIFEST_FORMAT = 1


def default_registry_dir() -> Path:
    """``$REPRO_REGISTRY_DIR`` if set, else ``~/.cache/repro-serve``."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-serve"


@dataclass(frozen=True)
class ModelBundle:
    """Everything one registered model version ships to the serving engine.

    ``automl`` is the fitted classifier (its ensemble members double as
    the Within-ALE committee); ``report`` carries the precomputed ALE
    disagreement profiles and the feedback subspace ``region`` the
    uncertainty monitor tests membership against.  The bundle is frozen:
    a version, once published, never changes.
    """

    name: str
    automl: Any
    domains: tuple[FeatureDomain, ...]
    report: FeedbackReport
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        return len(self.domains)

    @property
    def classes(self) -> list:
        return [cls.item() if isinstance(cls, np.generic) else cls for cls in self.automl.classes_]

    def summary(self) -> dict[str, Any]:
        """The manifest-embedded description of this bundle (JSON-safe)."""
        return {
            "n_features": self.n_features,
            "feature_names": [domain.name for domain in self.domains],
            "classes": self.classes,
            "committee_size": self.report.committee_size,
            "threshold": float(self.report.threshold),
            "n_feedback_regions": len(self.report.region),
            "metadata": dict(self.metadata),
        }


class ModelRegistry:
    """Versioned, promotable model storage on a content-addressed cache.

    Parameters
    ----------
    directory:
        Registry root; holds ``manifest.json`` plus an ``artifacts/``
        cache.  ``None`` uses :func:`default_registry_dir`.
    """

    def __init__(self, directory: Path | str | None = None):
        self.directory = Path(directory) if directory is not None else default_registry_dir()
        self.cache = ArtifactCache(self.directory / "artifacts")

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    # -- manifest I/O ------------------------------------------------------

    def _read_manifest(self) -> dict[str, Any]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return {"format": MANIFEST_FORMAT, "models": {}}
        except (OSError, json.JSONDecodeError) as error:
            raise RegistryError(f"cannot read registry manifest {self.manifest_path}: {error}") from error
        if manifest.get("format") != MANIFEST_FORMAT:
            raise RegistryError(
                f"registry manifest {self.manifest_path} has format "
                f"{manifest.get('format')!r}; this code reads format {MANIFEST_FORMAT}"
            )
        return manifest

    def _write_manifest(self, manifest: dict[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.manifest_path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _entry(self, manifest: dict[str, Any], name: str) -> dict[str, Any]:
        entry = manifest["models"].get(name)
        if entry is None:
            known = sorted(manifest["models"])
            raise RegistryError(f"no registered model named {name!r}; registered: {known}")
        return entry

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        automl,
        X,
        domains: Sequence[FeatureDomain],
        *,
        feedback: AleFeedback | None = None,
        metadata: dict[str, Any] | None = None,
        promote: bool = True,
    ) -> int:
        """Publish a fitted model as a new version of ``name``.

        Runs the Within-ALE feedback analysis over ``X`` (the training
        data the committee's ALE grids are anchored to) with ``feedback``
        (default: paper-default :class:`AleFeedback`), bundles the model
        with the resulting profiles and subspace region, publishes the
        bundle to the artifact cache, and appends a manifest version.
        With ``promote=True`` (default) the new version starts serving
        immediately; otherwise it waits for an explicit :meth:`promote`.
        Returns the new version number.
        """
        if not name or "/" in name:
            raise ValidationError(f"model names must be non-empty and '/'-free, got {name!r}")
        domains = tuple(domains)
        analyzer = feedback if feedback is not None else AleFeedback()
        report = analyzer.analyze(within_ale_committee(automl), X, domains)
        # Warm the membership fast path now: serving pays one broadcast
        # compare per batch instead of a first-request compile.
        report.region.compiled_bounds()
        bundle = ModelBundle(
            name=name,
            automl=automl,
            domains=domains,
            report=report,
            metadata=dict(metadata or {}),
        )
        key = self.cache.publish(bundle)

        manifest = self._read_manifest()
        entry = manifest["models"].setdefault(name, {"promoted": None, "previous": None, "versions": {}})
        version = 1 + max((int(v) for v in entry["versions"]), default=0)
        entry["versions"][str(version)] = {"key": key, **bundle.summary()}
        if promote:
            entry["previous"] = entry["promoted"]
            entry["promoted"] = version
        self._write_manifest(manifest)
        return version

    # -- loading -----------------------------------------------------------

    def load(self, name: str, version: int | None = None) -> ModelBundle:
        """Fetch a bundle: the promoted version by default, or an explicit one."""
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if version is None:
            version = entry.get("promoted")
            if version is None:
                available = sorted(map(int, entry["versions"]))
                raise RegistryError(
                    f"model {name!r} has no promoted version; "
                    f"registered versions: {available} — promote one "
                    f"(registry.promote({name!r}, v)) or load an explicit version"
                )
        info = entry["versions"].get(str(version))
        if info is None:
            raise RegistryError(
                f"model {name!r} has no version {version}; versions: {sorted(map(int, entry['versions']))}"
            )
        try:
            bundle = self.cache.fetch(info["key"])
        except KeyError as error:
            raise RegistryError(
                f"artifact for {name!r} v{version} (key {info['key'][:12]}…) is missing or "
                "corrupt; re-register the model"
            ) from error
        if not isinstance(bundle, ModelBundle):
            raise RegistryError(f"artifact for {name!r} v{version} is not a ModelBundle")
        return bundle

    def promoted_version(self, name: str) -> int | None:
        """The currently serving version of ``name`` (``None`` if none)."""
        return self._entry(self._read_manifest(), name)["promoted"]

    # -- promotion lifecycle ----------------------------------------------

    def promote(self, name: str, version: int) -> None:
        """Atomically make ``version`` the serving version of ``name``."""
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if str(version) not in entry["versions"]:
            raise RegistryError(
                f"cannot promote {name!r} v{version}: versions: {sorted(map(int, entry['versions']))}"
            )
        if entry["promoted"] == version:
            return  # already serving; keep "previous" meaningful
        entry["previous"] = entry["promoted"]
        entry["promoted"] = version
        self._write_manifest(manifest)

    def rollback(self, name: str) -> int:
        """Re-promote the previously serving version; returns it.

        One level deep by design: rollback is the emergency lever for "the
        model we just promoted is bad", not a version-control history.
        Rolling back again returns to the version that was just demoted.
        """
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        previous = entry["previous"]
        if previous is None:
            raise RegistryError(f"model {name!r} has no previous version to roll back to")
        entry["previous"] = entry["promoted"]
        entry["promoted"] = previous
        self._write_manifest(manifest)
        return int(previous)

    # -- canary traffic splits --------------------------------------------

    def set_canary(self, name: str, version: int, weight: float) -> None:
        """Route a ``weight`` fraction of ``name``'s predict traffic to ``version``.

        The split is manifest state, not process state: a router built
        via :meth:`~repro.serve.router.ModelRouter.from_registry` reads
        it at startup and serves the promoted version as primary with
        ``version`` as the weighted canary.  Traffic selection at serve
        time is a deterministic error-accumulator (no RNG), so the same
        request sequence always splits the same way.

        Parameters
        ----------
        name:
            Registered model name.
        version:
            The candidate version to receive canary traffic; must be
            registered (promotion not required — that is the point).
        weight:
            Fraction of predict traffic in ``(0, 1)`` sent to the canary.
        """
        if not 0.0 < weight < 1.0:
            raise ValidationError(f"canary weight must be in (0, 1), got {weight}")
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if str(version) not in entry["versions"]:
            raise RegistryError(
                f"cannot canary {name!r} v{version}: versions: {sorted(map(int, entry['versions']))}"
            )
        entry["canary"] = {"version": int(version), "weight": float(weight)}
        self._write_manifest(manifest)

    def clear_canary(self, name: str) -> None:
        """Remove ``name``'s canary split (all traffic back to promoted)."""
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if entry.pop("canary", None) is not None:
            self._write_manifest(manifest)

    def canary(self, name: str) -> dict[str, Any] | None:
        """The active canary split for ``name``: ``{"version", "weight"}`` or ``None``."""
        split = self._entry(self._read_manifest(), name).get("canary")
        return dict(split) if split is not None else None

    # -- maintenance -------------------------------------------------------

    def gc(self, *, dry_run: bool = False) -> dict[str, int]:
        """Delete cache entries no manifest version references.

        Retraining churns the artifact cache: every registered candidate
        — promoted or not — publishes a bundle, and superseded ones stay
        on disk forever unless collected.  ``gc`` walks the manifest,
        gathers every referenced key, and removes the rest.  With
        ``dry_run=True`` nothing is deleted; the counts report what
        *would* go.  Returns ``{"referenced", "unreferenced", "removed",
        "bytes_freed"}``.
        """
        manifest = self._read_manifest()
        referenced = {
            info["key"]
            for entry in manifest["models"].values()
            for info in entry["versions"].values()
        }
        unreferenced = [key for key in self.cache.keys() if key not in referenced]
        removed = 0
        bytes_freed = 0
        for key in unreferenced:
            path = self.cache.path_for(key)
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
            if dry_run:
                bytes_freed += size
                continue
            if self.cache.remove(key):
                removed += 1
                bytes_freed += size
        return {
            "referenced": len(referenced),
            "unreferenced": len(unreferenced),
            "removed": removed,
            "bytes_freed": bytes_freed,
        }

    # -- introspection -----------------------------------------------------

    def names(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._read_manifest()["models"])

    def versions(self, name: str) -> dict[int, dict[str, Any]]:
        """Version number → manifest summary for ``name``."""
        entry = self._entry(self._read_manifest(), name)
        return {int(v): dict(info) for v, info in sorted(entry["versions"].items(), key=lambda kv: int(kv[0]))}

    def describe(self) -> str:
        """Human-readable one-screen summary (the ``repro registry`` output)."""
        manifest = self._read_manifest()
        if not manifest["models"]:
            return f"registry {self.directory}: empty"
        lines = [f"registry {self.directory}:"]
        for name in sorted(manifest["models"]):
            entry = manifest["models"][name]
            promoted = entry["promoted"]
            for v, info in sorted(entry["versions"].items(), key=lambda kv: int(kv[0])):
                marker = "*" if promoted is not None and int(v) == int(promoted) else " "
                lines.append(
                    f"  {marker} {name} v{v}: {info['committee_size']} committee member(s), "
                    f"{info['n_feedback_regions']} feedback region(s), "
                    f"features {', '.join(info['feature_names'])}"
                )
        lines.append("  (* = promoted / serving)")
        return "\n".join(lines)
