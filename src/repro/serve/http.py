"""Threaded stdlib HTTP transport for :class:`ServeService`.

A deliberately small JSON-over-HTTP surface on
:class:`http.server.ThreadingHTTPServer` (one thread per connection;
they all funnel into the engine's bounded queue, so concurrency is
governed by backpressure, not by thread count):

- ``GET  /healthz``  → service identity and liveness;
- ``GET  /metrics``  → counters + latency histograms (JSON);
- ``POST /predict``  → ``{"rows": [[...], ...]}`` → labels/uncertainty;
- ``POST /feedback`` → ``{"limit": N}`` (optional) → labeling queue drain.

Error mapping is part of the contract: validation failures are ``400``,
a shed request is ``503`` (the HTTP spelling of
:class:`BackpressureError` — retryable), a timed-out request is ``504``,
and unknown routes are ``404``.  Every response body is JSON, including
errors (``{"error": ..., "type": ...}``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from .service import ServeService

__all__ = ["ServeHTTPServer", "serve_http"]

#: Largest request body accepted, to bound memory per connection.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the shared :class:`ServeService`."""

    server: "ServeHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # silence per-request stderr lines; metrics cover observability

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error: BaseException) -> None:
        self._send_json(status, {"error": str(error), "type": type(error).__name__})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ValidationError(f"request body too large ({length} bytes > {MAX_BODY_BYTES})")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, service.healthz())
        elif self.path == "/metrics":
            self._send_json(200, service.metrics())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}", "type": "NotFound"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        try:
            payload = self._read_body()
            if self.path == "/predict":
                rows = payload.get("rows")
                if rows is None:
                    raise ValidationError('predict requests need a "rows" field: {"rows": [[...], ...]}')
                self._send_json(200, service.predict(rows))
            elif self.path == "/feedback":
                limit = payload.get("limit")
                if limit is not None and (not isinstance(limit, int) or limit < 0):
                    raise ValidationError(f'"limit" must be a non-negative integer, got {limit!r}')
                self._send_json(200, service.feedback(limit))
            else:
                self._send_json(404, {"error": f"no route {self.path!r}", "type": "NotFound"})
        except ValidationError as error:
            self._send_error_json(400, error)
        except BackpressureError as error:
            self._send_error_json(503, error)
        except RequestTimeoutError as error:
            self._send_error_json(504, error)
        except ServeError as error:
            self._send_error_json(500, error)


class ServeHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`ServeService`."""

    daemon_threads = True

    def __init__(self, service: ServeService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns it (caller keeps the server)."""
        thread = threading.Thread(target=self.serve_forever, name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()


def serve_http(service: ServeService, host: str = "127.0.0.1", port: int = 0) -> ServeHTTPServer:
    """Bind and background-start an HTTP server for ``service``.

    ``port=0`` lets the OS pick a free port (read it from ``server.url``),
    which is what tests and single-machine demos want.
    """
    server = ServeHTTPServer(service, host, port)
    server.serve_background()
    return server
