"""Threaded stdlib HTTP transport for :class:`ServeService`.

A deliberately small JSON-over-HTTP surface on
:class:`http.server.ThreadingHTTPServer` (one thread per connection;
they all funnel into the engine's bounded queue, so concurrency is
governed by backpressure, not by thread count):

- ``GET  /healthz``  → service identity and liveness;
- ``GET  /metrics``  → counters + latency histograms (JSON);
- ``POST /predict``  → ``{"rows": [[...], ...]}`` → labels/uncertainty;
- ``POST /predict/<name>``  → same, routed by model name;
- ``POST /feedback[/<name>]`` → ``{"limit": N}`` → labeling queue drain;
- ``POST /loop/tick`` / ``GET /loop/status`` → drive an attached
  retraining loop (:meth:`RequestDispatcher.attach_loop`) over the wire.

Routing, validation, and the error-status contract (400 validation,
503 shed, 504 timeout, 404 unknown route, 500 other serve failures)
live in the shared :class:`~repro.serve.router.RequestDispatcher`, so
this transport and the async one (:mod:`repro.serve.async_http`) cannot
drift: the same request yields byte-identical JSON on both.

Shutdown drains: :meth:`ServeHTTPServer.close` first stops accepting
connections, then quiesces the service so every request already in the
engine's queue is batched, processed, and answered before the engine
goes down — in-flight callers get real replies, not abandoned futures.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ValidationError
from .router import ModelRouter, RequestDispatcher
from .service import ServeService

__all__ = ["ServeHTTPServer", "serve_http"]

#: Largest request body accepted, to bound memory per connection.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Socket plumbing only; all semantics live in the dispatcher."""

    server: "ServeHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # silence per-request stderr lines; metrics cover observability

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ValidationError(f"request body too large ({length} bytes > {MAX_BODY_BYTES})")
        raw = self.rfile.read(length) if length else b"{}"
        return parse_json_body(raw)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        status, payload = self.server.dispatcher.get(self.path)
        self._send_json(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        dispatcher = self.server.dispatcher
        try:
            payload = self._read_body()
        except ValidationError as error:
            status, body = dispatcher.error_response(error)
        else:
            status, body = dispatcher.post(self.path, payload)
        self._send_json(status, body)


def parse_json_body(raw: bytes) -> dict:
    """Decode a request body to the JSON object the API requires.

    Shared by both transports so malformed input produces the identical
    400 message whichever server received it.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValidationError(f"request body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ValidationError("request body must be a JSON object")
    return payload


class ServeHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one service or router."""

    daemon_threads = True

    def __init__(self, service: ServeService | ModelRouter, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service
        self.dispatcher = RequestDispatcher(service)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns it (caller keeps the server)."""
        thread = threading.Thread(target=self.serve_forever, name="repro-serve-http", daemon=True)
        thread.start()
        return thread

    def close(self, *, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, then close the engine.

        Order matters: new connections are refused first, then
        ``quiesce`` waits (up to ``drain_timeout``) for every request
        already accepted into the engine queue to be batched and
        answered, and only then does the engine shut down.  Closing the
        engine first would strand queued requests behind the shutdown
        sentinel — their handler threads would time out holding open
        connections (the pre-PR-9 behaviour).
        """
        self.shutdown()
        self.server_close()
        try:
            self.service.quiesce(drain_timeout)
        finally:
            self.service.close()


def serve_http(
    service: ServeService | ModelRouter, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Bind and background-start an HTTP server for ``service``.

    ``port=0`` lets the OS pick a free port (read it from ``server.url``),
    which is what tests and single-machine demos want.
    """
    server = ServeHTTPServer(service, host, port)
    server.serve_background()
    return server
