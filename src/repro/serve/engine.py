"""The inference engine: micro-batched, bounded, deterministic.

Requests enter a bounded queue and a single batcher thread drains them
into micro-batches: a batch flushes when it reaches ``max_batch`` rows
or when the oldest queued request has waited ``max_delay`` seconds.
Each batch makes *one* vectorized pass through the registered ensemble
(:meth:`AutoMLClassifier.predict_batch`) and one pass through the
uncertainty monitor, then fans results back out per request.  Batching
is how a 1-vCPU service gets throughput: the ensemble's per-call fixed
cost (estimator dispatch, validation, alignment) is paid once per batch
instead of once per row.

Overload policy is *shed, don't block*: ``submit`` uses ``put_nowait``
and raises :class:`BackpressureError` when the queue is full, so a
caller learns about overload in microseconds instead of holding a
connection open.  Each request also carries a timeout; a reply that
misses it raises :class:`RequestTimeoutError` in the caller (the result
is discarded when it eventually arrives).

Determinism: predictions are computed by the same fitted ensemble code
path as offline ``AutoML.predict`` — batching changes *when* rows are
evaluated, never *what* is computed for them.  The engine reads the
clock only through :mod:`repro.runtime.clock` (deadlines and latency
metrics — budget logic, per RL004), and draws no randomness at all.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Any

import numpy as np

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from ..runtime.clock import Deadline, Stopwatch
from .metrics import MetricsRegistry
from .monitor import UncertaintyMonitor
from .registry import ModelBundle

__all__ = ["ServeConfig", "InferenceEngine", "Prediction"]

#: Queue sentinel that tells the batcher thread to exit.
_SHUTDOWN = object()


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`InferenceEngine`.

    ``max_batch`` and ``max_delay`` trade latency for throughput:
    a flush happens at whichever comes first.  ``queue_bound`` is the
    backpressure line — requests beyond it are shed, not buffered.
    """

    max_batch: int = 32
    max_delay: float = 0.01
    queue_bound: int = 256
    request_timeout: float = 10.0
    disagreement_threshold: float | None = None
    labeling_queue_capacity: int = 1024

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValidationError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.queue_bound < 1:
            raise ValidationError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.request_timeout <= 0:
            raise ValidationError(f"request_timeout must be positive, got {self.request_timeout}")


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One request's result: labels plus the uncertainty verdicts."""

    labels: list
    proba: np.ndarray  # (n_points, n_classes)
    in_uncertain_region: list[bool]
    in_feedback_region: list[bool]
    disagreement: list[float]

    def to_json(self) -> dict[str, Any]:
        return {
            "labels": self.labels,
            "proba": self.proba.tolist(),
            "in_uncertain_region": self.in_uncertain_region,
            "in_feedback_region": self.in_feedback_region,
            "disagreement": self.disagreement,
        }


class _PendingRequest:
    """A submitted batch of rows waiting for its reply."""

    __slots__ = ("X", "event", "result", "error", "stopwatch")

    def __init__(self, X: np.ndarray, stopwatch: Stopwatch):
        self.X = X
        self.event = threading.Event()
        self.result: Prediction | None = None
        self.error: BaseException | None = None
        self.stopwatch = stopwatch


class InferenceEngine:
    """Micro-batching prediction service over one registered model bundle."""

    def __init__(
        self,
        bundle: ModelBundle,
        config: ServeConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self.bundle = bundle
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.monitor = UncertaintyMonitor(
            bundle.report,
            disagreement_threshold=self.config.disagreement_threshold,
            queue_capacity=self.config.labeling_queue_capacity,
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_bound)
        self._closed = threading.Event()
        self._drain_shutdown = False  # batcher-thread-only: sentinel seen mid-batch
        # Pre-create every instrument so /metrics shows zeros, not holes.
        for name in ("requests", "points", "shed", "timeouts", "errors", "uncertain_points", "batches"):
            self.metrics.counter(name)
        for name in ("batch_size", "queue_depth", "latency_seconds"):
            self.metrics.histogram(name)
        self._batcher = threading.Thread(target=self._batch_loop, name="repro-serve-batcher", daemon=True)
        self._batcher.start()

    # -- client side -------------------------------------------------------

    def submit(self, X) -> _PendingRequest:
        """Enqueue one request (one or more rows); sheds instead of blocking."""
        if self._closed.is_set():
            raise ServeError("inference engine is closed")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[0] < 1:
            raise ValidationError(f"requests must be (n_points, n_features) with n_points >= 1, got {X.shape}")
        if X.shape[1] != self.bundle.n_features:
            raise ValidationError(
                f"model {self.bundle.name!r} expects {self.bundle.n_features} features, got {X.shape[1]}"
            )
        if not np.isfinite(X).all():
            raise ValidationError("request contains NaN or infinite values")
        pending = _PendingRequest(X, Stopwatch())
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.metrics.counter("shed").inc()
            raise BackpressureError(
                f"inference queue is full ({self.config.queue_bound} pending requests); retry later"
            ) from None
        self.metrics.counter("requests").inc()
        self.metrics.counter("points").inc(X.shape[0])
        self.metrics.histogram("queue_depth").observe(self._queue.qsize())
        return pending

    def predict(self, X, *, timeout: float | None = None) -> Prediction:
        """Submit and wait: the blocking convenience the clients use."""
        pending = self.submit(X)
        timeout = self.config.request_timeout if timeout is None else timeout
        if not pending.event.wait(timeout):
            self.metrics.counter("timeouts").inc()
            raise RequestTimeoutError(f"no reply within {timeout:.3f}s (service overloaded or wedged)")
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    # -- batcher side ------------------------------------------------------

    def _collect_batch(self, first: Any) -> list[_PendingRequest]:
        """Grow a batch from ``first`` until max_batch rows or max_delay."""
        batch = [first]
        rows = first.X.shape[0]
        deadline = Deadline(self.config.max_delay)
        while rows < self.config.max_batch:
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Never re-post: a racing submit could have taken the freed
                # slot, and a blocking put here would wedge the batcher.
                self._drain_shutdown = True
                break
            batch.append(item)
            rows += item.X.shape[0]
        return batch

    def _batch_loop(self) -> None:
        while not self._drain_shutdown:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = self._collect_batch(item)
            self._process(batch)

    def _process(self, batch: list[_PendingRequest]) -> None:
        X = np.concatenate([pending.X for pending in batch], axis=0)
        self.metrics.counter("batches").inc()
        self.metrics.histogram("batch_size").observe(X.shape[0])
        try:
            labels, proba, stack = self.bundle.automl.predict_batch(X)
            verdicts = self.monitor.evaluate(X, stack)
        except BaseException as error:  # delivered to every waiter, not swallowed
            self.metrics.counter("errors").inc(len(batch))
            for pending in batch:
                pending.error = error
                pending.event.set()
            return
        self.metrics.counter("uncertain_points").inc(int(verdicts["uncertain"].sum()))
        offset = 0
        for pending in batch:
            rows = slice(offset, offset + pending.X.shape[0])
            offset += pending.X.shape[0]
            pending.result = Prediction(
                labels=[label.item() if isinstance(label, np.generic) else label for label in labels[rows]],
                proba=proba[rows],
                in_uncertain_region=[bool(flag) for flag in verdicts["uncertain"][rows]],
                in_feedback_region=[bool(flag) for flag in verdicts["in_region"][rows]],
                disagreement=[float(d) for d in verdicts["disagreement"][rows]],
            )
            self.metrics.histogram("latency_seconds").observe(pending.stopwatch.elapsed())
            pending.event.set()

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop the batcher; queued requests are still processed first."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_SHUTDOWN)
        self._batcher.join(timeout)

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
