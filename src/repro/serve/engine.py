"""The inference engine: micro-batched, bounded, deterministic.

Requests enter a bounded queue and a single batcher thread drains them
into micro-batches: a batch flushes when it reaches ``max_batch`` rows
or when the oldest queued request has waited ``max_delay`` seconds.
Each batch makes *one* vectorized pass through the registered ensemble
(:meth:`AutoMLClassifier.predict_batch`) and one pass through the
uncertainty monitor, then fans results back out per request.  Batching
is how a 1-vCPU service gets throughput: the ensemble's per-call fixed
cost (estimator dispatch, validation, alignment) is paid once per batch
instead of once per row.

Overload policy is *shed, don't block*: ``submit`` uses ``put_nowait``
and raises :class:`BackpressureError` when the queue is full, so a
caller learns about overload in microseconds instead of holding a
connection open.  Each request also carries a timeout; a reply that
misses it raises :class:`RequestTimeoutError` in the caller (the result
is discarded when it eventually arrives).

Determinism: predictions are computed by the same fitted ensemble code
path as offline ``AutoML.predict`` — batching changes *when* rows are
evaluated, never *what* is computed for them.  The engine reads the
clock only through :mod:`repro.runtime.clock` (deadlines and latency
metrics — budget logic, per RL004), and draws no randomness at all.

Shadow mirroring: a :class:`ShadowMirror` attached via
:meth:`InferenceEngine.attach_shadow` replays a deterministic fraction
of served batches through a *candidate* model — after the real replies
have already been delivered, so mirroring can never change served bytes
or add to served latency beyond sharing the batcher thread.  Batch
selection uses an error-accumulator (``fraction`` added per batch, fire
on overflow), not randomness, so a traffic trace mirrors identically on
every run.  The mirror is how the retraining loop's shadow evaluation
(:mod:`repro.loop`) sees live traffic.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
from typing import Any

import numpy as np

from ..exceptions import BackpressureError, RequestTimeoutError, ServeError, ValidationError
from ..runtime.clock import Deadline, Stopwatch
from .metrics import MetricsRegistry
from .monitor import UncertaintyMonitor
from .registry import ModelBundle

__all__ = ["ServeConfig", "InferenceEngine", "Prediction", "ShadowMirror"]

#: Queue sentinel that tells the batcher thread to exit.
_SHUTDOWN = object()


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`InferenceEngine`.

    ``max_batch`` and ``max_delay`` trade latency for throughput:
    a flush happens at whichever comes first.  ``queue_bound`` is the
    backpressure line — requests beyond it are shed, not buffered.
    ``labeling_snapshot`` (a file path) makes the labeling queue durable:
    offered/drained entries are journaled to an append-only JSONL so a
    restart restores pending labels.
    """

    max_batch: int = 32
    max_delay: float = 0.01
    queue_bound: int = 256
    request_timeout: float = 10.0
    disagreement_threshold: float | None = None
    labeling_queue_capacity: int = 1024
    labeling_snapshot: str | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:
            raise ValidationError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.queue_bound < 1:
            raise ValidationError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.request_timeout <= 0:
            raise ValidationError(f"request_timeout must be positive, got {self.request_timeout}")


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One request's result: labels plus the uncertainty verdicts."""

    labels: list
    proba: np.ndarray  # (n_points, n_classes)
    in_uncertain_region: list[bool]
    in_feedback_region: list[bool]
    disagreement: list[float]

    def to_json(self) -> dict[str, Any]:
        return {
            "labels": self.labels,
            "proba": self.proba.tolist(),
            "in_uncertain_region": self.in_uncertain_region,
            "in_feedback_region": self.in_feedback_region,
            "disagreement": self.disagreement,
        }


class ShadowMirror:
    """Deterministic candidate-traffic mirror for shadow evaluation.

    Attached to an :class:`InferenceEngine`, the mirror replays a
    configurable ``fraction`` of served batches through a candidate
    model.  Selection is an error-accumulator — ``fraction`` is added
    per batch and a batch mirrors when the accumulator overflows 1 — so
    the mirrored subset is an exact, reproducible function of batch
    order, with no randomness (RL001) and no clock.  Mirrored rows are
    buffered (bounded by ``max_rows``) so the promotion gate can
    recompute ALE curves on *actual* traffic, and per-row label
    agreement with the served model is tallied as it goes.

    Candidate predictions are computed after the served replies are
    delivered and are never returned to any caller: a mirror can slow
    the batcher (that cost is bounded by ``fraction``), but it cannot
    change a single served byte.
    """

    def __init__(self, automl: Any, *, fraction: float = 0.25, max_rows: int = 4096):
        if not 0.0 < fraction <= 1.0:
            raise ValidationError(f"shadow fraction must be in (0, 1], got {fraction}")
        if max_rows < 1:
            raise ValidationError(f"max_rows must be >= 1, got {max_rows}")
        self.automl = automl
        self.fraction = float(fraction)
        self.max_rows = int(max_rows)
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self.mirrored_batches = 0
        self.mirrored_rows = 0
        self.matches = 0
        self.errors = 0

    def take(self) -> bool:
        """Deterministically decide whether the next batch mirrors."""
        with self._lock:
            self._accumulator += self.fraction
            if self._accumulator >= 1.0 - 1e-12:
                self._accumulator -= 1.0
                return True
            return False

    def observe(self, X: np.ndarray, served_labels) -> int | None:
        """Mirror one batch; returns the agreement count (``None`` on error)."""
        try:
            candidate_labels = self.automl.predict(X)
        except Exception:
            with self._lock:
                self.errors += 1
            return None
        matches = int(np.sum(np.asarray(candidate_labels) == np.asarray(served_labels)))
        with self._lock:
            self.mirrored_batches += 1
            self.mirrored_rows += int(X.shape[0])
            self.matches += matches
            room = self.max_rows - self._buffered
            if room > 0:
                kept = np.array(X[:room], dtype=np.float64)
                self._buffer.append(kept)
                self._buffered += kept.shape[0]
        return matches

    def rows(self) -> np.ndarray:
        """The buffered mirrored traffic, ``(n, n_features)`` (may be empty)."""
        with self._lock:
            if not self._buffer:
                return np.empty((0, 0))
            return np.concatenate(self._buffer, axis=0)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            agreement = self.matches / self.mirrored_rows if self.mirrored_rows else None
            return {
                "fraction": self.fraction,
                "mirrored_batches": self.mirrored_batches,
                "mirrored_rows": self.mirrored_rows,
                "matches": self.matches,
                "agreement": agreement,
                "buffered_rows": self._buffered,
                "errors": self.errors,
            }


class _PendingRequest:
    """A submitted batch of rows waiting for its reply.

    ``on_complete`` is the non-blocking completion path: the batcher
    invokes it (after ``result``/``error`` is set and ``event`` fired)
    from its own thread, so an event-loop transport can be woken without
    parking a thread per request.  The callback must not raise and must
    not block; a buggy one is swallowed so it can never wedge the
    batcher.
    """

    __slots__ = ("X", "event", "result", "error", "stopwatch", "on_complete")

    def __init__(self, X: np.ndarray, stopwatch: Stopwatch, on_complete=None):
        self.X = X
        self.event = threading.Event()
        self.result: Prediction | None = None
        self.error: BaseException | None = None
        self.stopwatch = stopwatch
        self.on_complete = on_complete

    def deliver(self) -> None:
        """Fire the event, then the completion callback (exactly once)."""
        self.event.set()
        if self.on_complete is not None:
            try:
                self.on_complete(self)
            except Exception:
                pass  # a transport bug must not take down the batcher


class InferenceEngine:
    """Micro-batching prediction service over one registered model bundle."""

    def __init__(
        self,
        bundle: ModelBundle,
        config: ServeConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self.bundle = bundle
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.monitor = UncertaintyMonitor(
            bundle.report,
            disagreement_threshold=self.config.disagreement_threshold,
            queue_capacity=self.config.labeling_queue_capacity,
            snapshot_path=self.config.labeling_snapshot,
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_bound)
        self._closed = threading.Event()
        self._drain_shutdown = False  # batcher-thread-only: sentinel seen mid-batch
        self._shadow: ShadowMirror | None = None
        # Accepted requests whose batch (including its post-reply shadow
        # work) has not finished yet; quiesce() waits on this.
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        # Pre-create every instrument so /metrics shows zeros, not holes.
        for name in (
            "requests",
            "points",
            "shed",
            "timeouts",
            "errors",
            "uncertain_points",
            "batches",
            "shadow_batches",
            "shadow_rows",
            "shadow_mismatches",
            "shadow_errors",
        ):
            self.metrics.counter(name)
        for name in ("batch_size", "queue_depth", "latency_seconds"):
            self.metrics.histogram(name)
        self._batcher = threading.Thread(target=self._batch_loop, name="repro-serve-batcher", daemon=True)
        self._batcher.start()

    # -- client side -------------------------------------------------------

    def submit(self, X, *, on_complete=None) -> _PendingRequest:
        """Enqueue one request (one or more rows); sheds instead of blocking.

        Parameters
        ----------
        X:
            The request rows, ``(n_points, n_features)``.
        on_complete:
            Optional callback invoked from the batcher thread once the
            request's ``result`` or ``error`` is set — the hand-off an
            event-loop transport uses instead of blocking in
            :meth:`predict`.  Must be fast and non-raising.
        """
        if self._closed.is_set():
            raise ServeError("inference engine is closed")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[0] < 1:
            raise ValidationError(f"requests must be (n_points, n_features) with n_points >= 1, got {X.shape}")
        if X.shape[1] != self.bundle.n_features:
            raise ValidationError(
                f"model {self.bundle.name!r} expects {self.bundle.n_features} features, got {X.shape[1]}"
            )
        if not np.isfinite(X).all():
            raise ValidationError("request contains NaN or infinite values")
        pending = _PendingRequest(X, Stopwatch(), on_complete)
        with self._inflight_cond:
            self._inflight += 1  # before the put: the batcher may drain it instantly
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()
            self.metrics.counter("shed").inc()
            raise BackpressureError(
                f"inference queue is full ({self.config.queue_bound} pending requests); retry later"
            ) from None
        self.metrics.counter("requests").inc()
        self.metrics.counter("points").inc(X.shape[0])
        self.metrics.histogram("queue_depth").observe(self._queue.qsize())
        return pending

    def predict(self, X, *, timeout: float | None = None) -> Prediction:
        """Submit and wait: the blocking convenience the clients use."""
        pending = self.submit(X)
        timeout = self.config.request_timeout if timeout is None else timeout
        if not pending.event.wait(timeout):
            self.metrics.counter("timeouts").inc()
            raise RequestTimeoutError(f"no reply within {timeout:.3f}s (service overloaded or wedged)")
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    # -- batcher side ------------------------------------------------------

    def _collect_batch(self, first: Any) -> list[_PendingRequest]:
        """Grow a batch from ``first`` until max_batch rows or max_delay."""
        batch = [first]
        rows = first.X.shape[0]
        deadline = Deadline(self.config.max_delay)
        while rows < self.config.max_batch:
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Never re-post: a racing submit could have taken the freed
                # slot, and a blocking put here would wedge the batcher.
                self._drain_shutdown = True
                break
            batch.append(item)
            rows += item.X.shape[0]
        return batch

    def _batch_loop(self) -> None:
        while not self._drain_shutdown:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = self._collect_batch(item)
            try:
                self._process(batch)
            finally:
                with self._inflight_cond:
                    self._inflight -= len(batch)
                    self._inflight_cond.notify_all()

    def _process(self, batch: list[_PendingRequest]) -> None:
        X = np.concatenate([pending.X for pending in batch], axis=0)
        self.metrics.counter("batches").inc()
        self.metrics.histogram("batch_size").observe(X.shape[0])
        try:
            labels, proba, stack = self.bundle.automl.predict_batch(X)
            verdicts = self.monitor.evaluate(X, stack)
        except BaseException as error:  # delivered to every waiter, not swallowed
            self.metrics.counter("errors").inc(len(batch))
            for pending in batch:
                pending.error = error
                pending.deliver()
            return
        self.metrics.counter("uncertain_points").inc(int(verdicts["uncertain"].sum()))
        offset = 0
        for pending in batch:
            rows = slice(offset, offset + pending.X.shape[0])
            offset += pending.X.shape[0]
            pending.result = Prediction(
                labels=[label.item() if isinstance(label, np.generic) else label for label in labels[rows]],
                proba=proba[rows],
                in_uncertain_region=[bool(flag) for flag in verdicts["uncertain"][rows]],
                in_feedback_region=[bool(flag) for flag in verdicts["in_region"][rows]],
                disagreement=[float(d) for d in verdicts["disagreement"][rows]],
            )
            self.metrics.histogram("latency_seconds").observe(pending.stopwatch.elapsed())
            pending.deliver()
        # Mirroring runs strictly after every reply above was delivered:
        # the candidate sees the batch, callers never see the candidate.
        shadow = self._shadow
        if shadow is not None and shadow.take():
            matched = shadow.observe(X, labels)
            if matched is None:
                self.metrics.counter("shadow_errors").inc()
            else:
                self.metrics.counter("shadow_batches").inc()
                self.metrics.counter("shadow_rows").inc(X.shape[0])
                self.metrics.counter("shadow_mismatches").inc(X.shape[0] - matched)

    # -- shadow evaluation -------------------------------------------------

    def attach_shadow(self, mirror: ShadowMirror) -> None:
        """Start mirroring a fraction of traffic to ``mirror``'s candidate."""
        self._shadow = mirror

    def detach_shadow(self) -> ShadowMirror | None:
        """Stop mirroring; returns the mirror (with its accumulated stats)."""
        mirror, self._shadow = self._shadow, None
        return mirror

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait until every accepted request has been fully processed.

        "Fully" includes the post-reply shadow work: a caller that saw
        its reply may still race the batcher's mirroring of that batch,
        so anything that reads mirror or shadow-counter state (the
        retraining loop's tick does) must quiesce first to be
        deterministic with respect to completed traffic.  Returns False
        on timeout instead of raising — staleness is tolerable, a
        wedged caller is not.
        """
        deadline = Deadline(timeout)
        with self._inflight_cond:
            while self._inflight:
                remaining = deadline.remaining()
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop the batcher; queued requests are still processed first.

        Requests that raced ``close()`` and were enqueued *after* the
        shutdown sentinel can never be batched — the batcher has already
        exited.  Abandoning them would wedge their waiters until their
        timeout, so they are drained here and failed fast with a typed
        :class:`ServeError` (delivered through the normal reply path,
        callbacks included).
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_SHUTDOWN)
        self._batcher.join(timeout)
        if self._batcher.is_alive():
            # Wedged mid-batch: the queue (sentinel included) still belongs
            # to the batcher; draining it here would strand the batcher on
            # an empty queue.  Waiters fall back to their own timeouts.
            return
        leftovers: list[_PendingRequest] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        for pending in leftovers:
            pending.error = ServeError("inference engine closed before this request was batched")
            pending.deliver()
        if leftovers:
            self.metrics.counter("errors").inc(len(leftovers))
            with self._inflight_cond:
                self._inflight -= len(leftovers)
                self._inflight_cond.notify_all()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
