"""Event-loop HTTP transport: one thread, thousands of connections.

The threaded transport spends a thread per connection; under connection
churn and slow clients that is the bottleneck long before the model is.
This module serves the same JSON API from a single event-loop thread on
stdlib :mod:`selectors`:

- **non-blocking everything** — accept, read, and write are all
  non-blocking; a slow (byte-dribbling) client costs a buffer, not a
  thread;
- **per-connection state machines** — each connection incrementally
  accumulates bytes until a full request (header block + declared body)
  is buffered, handles it, and only then parses the next, so a
  connection has at most one request in flight and pipelined bytes wait
  their turn in the read buffer;
- **bounded hand-off** — predict requests enter the existing
  :class:`~repro.serve.engine.InferenceEngine` micro-batcher through its
  bounded queue via :meth:`ServeService.begin_predict`; the batcher's
  completion callback pushes the finished request onto a thread-safe
  deque and pokes a wakeup socketpair, so the loop never blocks waiting
  for a model and the engine never blocks waiting for a socket;
- **write backpressure** — responses queue in a per-connection write
  buffer flushed as ``EVENT_WRITE`` readiness allows;
- **deadlines, not threads** — per-request timeouts (504) and
  idle-connection reaping are wall-clock deadlines
  (:mod:`repro.runtime.clock`) checked between selector wakeups.

Semantics — routing, validation, error statuses, response payloads —
come from the same :class:`~repro.serve.router.RequestDispatcher` and
:func:`~repro.serve.service.render_prediction` the threaded transport
uses, so the two servers emit bitwise-identical JSON bodies (asserted by
the transport-equivalence tests).
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
from collections import deque

from ..exceptions import RequestTimeoutError, ServeError, ValidationError
from ..runtime.clock import Deadline, monotonic
from .http import MAX_BODY_BYTES, parse_json_body
from .router import ModelRouter, RequestDispatcher, RouteNotFound
from .service import ServeService, render_prediction

__all__ = ["AsyncHTTPServer", "serve_async_http"]

_RECV_CHUNK = 65536
_MAX_HEADER_BYTES = 65536

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _Inflight:
    """One submitted predict request a connection is waiting on."""

    __slots__ = ("pending", "service", "model", "version", "deadline", "timeout", "close_requested")

    def __init__(self, pending, service, model, version, timeout, close_requested):
        self.pending = pending
        self.service = service
        self.model = model
        self.version = version
        self.timeout = timeout
        self.deadline = Deadline(timeout)
        self.close_requested = close_requested


class _Connection:
    """Per-socket state machine: read buffer → at most one inflight → write buffer."""

    __slots__ = ("sock", "rbuf", "wbuf", "inflight", "close_after_write", "last_activity", "open", "events")

    def __init__(self, sock):
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.inflight: _Inflight | None = None
        self.close_after_write = False
        self.last_activity = monotonic()
        self.open = True
        self.events = selectors.EVENT_READ


class AsyncHTTPServer:
    """Selectors-based single-thread HTTP server over a service or router.

    Parameters
    ----------
    service:
        A :class:`ServeService` or :class:`ModelRouter`; owned by the
        server (``close()`` closes it).
    host:
        Interface to bind.
    port:
        TCP port; ``0`` lets the OS choose (read it from :attr:`url`).
    idle_timeout:
        Seconds a connection may sit with no traffic and no inflight
        request before it is reaped; ``None`` disables reaping.
    max_connections:
        Accepted-connection cap; connections beyond it are refused at
        accept time so memory stays bounded under connection floods.
    """

    def __init__(
        self,
        service: ServeService | ModelRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout: float | None = 30.0,
        max_connections: int = 1024,
    ):
        self.service = service
        self.dispatcher = RequestDispatcher(service)
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        #: Instance-level body cap so subclasses (the artifact store, whose
        #: blobs are legitimately large) can raise or lower it per server.
        self.max_body_bytes = MAX_BODY_BYTES
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._completions: deque = deque()
        self._connections: set[_Connection] = set()
        self._closing = threading.Event()
        self._drain_deadline: Deadline | None = None
        self._thread: threading.Thread | None = None

    # -- public surface ----------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._listener.getsockname()[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Run the event loop on a daemon thread; returns it."""
        thread = threading.Thread(target=self._run, name="repro-serve-async", daemon=True)
        self._thread = thread
        thread.start()
        return thread

    def close(self, *, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain inflight requests and buffers, close the engine.

        Mirrors the threaded server's contract: connections already
        waiting on the engine get real replies (written out before their
        sockets close) as long as they arrive within ``drain_timeout``.
        """
        deadline = Deadline(drain_timeout)
        self._drain_deadline = deadline
        self._closing.set()
        self._wake()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join((deadline.remaining() or 0.0) + 5.0)
        else:
            self._teardown()
        try:
            self.service.quiesce(deadline.remaining())
        finally:
            self.service.close()

    # -- event loop --------------------------------------------------------

    def _run(self) -> None:
        sel = self._selector
        sel.register(self._listener, selectors.EVENT_READ, "listener")
        sel.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        accepting = True
        while True:
            for key, mask in sel.select(self._next_timeout()):
                if key.data == "listener":
                    self._accept()
                elif key.data == "wakeup":
                    self._drain_wakeups()
                else:
                    conn = key.data
                    if mask & selectors.EVENT_WRITE:
                        self._flush(conn)
                    if conn.open and mask & selectors.EVENT_READ:
                        self._on_read(conn)
            self._drain_completions()
            self._expire()
            if self._closing.is_set():
                if accepting:
                    accepting = False
                    sel.unregister(self._listener)
                    self._listener.close()
                if self._drained() or (
                    self._drain_deadline is not None and self._drain_deadline.exceeded()
                ):
                    break
        self._teardown()

    def _drained(self) -> bool:
        return all(conn.inflight is None and not conn.wbuf for conn in self._connections)

    def _next_timeout(self) -> float:
        timeout = 0.5
        now = monotonic()
        for conn in self._connections:
            if conn.inflight is not None:
                remaining = conn.inflight.deadline.remaining()
                if remaining is not None:
                    timeout = min(timeout, remaining)
            elif self.idle_timeout is not None:
                timeout = min(timeout, conn.last_activity + self.idle_timeout - now)
        if self._closing.is_set():
            timeout = min(timeout, 0.05)
        return max(0.0, timeout)

    def _teardown(self) -> None:
        for conn in list(self._connections):
            self._close_conn(conn)
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()

    # -- accepting ---------------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self._closing.is_set() or len(self._connections) >= self.max_connections:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock)
            self._connections.add(conn)
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _close_conn(self, conn: _Connection) -> None:
        if not conn.open:
            return
        conn.open = False
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._connections.discard(conn)

    def _set_events(self, conn: _Connection, events: int) -> None:
        if conn.open and conn.events != events:
            conn.events = events
            self._selector.modify(conn.sock, events, conn)

    # -- reading / incremental parsing -------------------------------------

    def _on_read(self, conn: _Connection) -> None:
        try:
            while True:
                chunk = conn.sock.recv(_RECV_CHUNK)
                if chunk == b"":
                    # Peer closed: any inflight reply has nowhere to go.
                    self._close_conn(conn)
                    return
                conn.rbuf += chunk
                if len(chunk) < _RECV_CHUNK:
                    break
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_conn(conn)
            return
        conn.last_activity = monotonic()
        self._parse(conn)

    def _parse(self, conn: _Connection) -> None:
        """Advance the state machine: handle every complete buffered request."""
        while conn.open and conn.inflight is None and not conn.close_after_write:
            split = conn.rbuf.find(b"\r\n\r\n")
            if split < 0:
                if len(conn.rbuf) > _MAX_HEADER_BYTES:
                    self._respond(
                        conn,
                        400,
                        {"error": "request headers too large", "type": "ValidationError"},
                        close=True,
                    )
                return
            lines = bytes(conn.rbuf[:split]).split(b"\r\n")
            try:
                method, path, _version = lines[0].decode("latin-1").split(" ", 2)
            except (UnicodeDecodeError, ValueError):
                conn.rbuf.clear()
                self._respond(
                    conn, 400, {"error": "malformed request line", "type": "ValidationError"}, close=True
                )
                return
            headers = {}
            for line in lines[1:]:
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if length < 0:
                conn.rbuf.clear()
                self._respond(
                    conn, 400, {"error": "invalid Content-Length", "type": "ValidationError"}, close=True
                )
                return
            if length > self.max_body_bytes:
                conn.rbuf.clear()
                status, payload = self._oversized_body(length)
                self._respond(conn, status, payload, close=True)
                return
            total = split + 4 + length
            if len(conn.rbuf) < total:
                return  # body still dribbling in
            body = bytes(conn.rbuf[split + 4 : total])
            del conn.rbuf[:total]
            close_requested = headers.get("connection", "").lower() == "close"
            self._handle(conn, method, path, body, close_requested, headers)

    # -- request handling ---------------------------------------------------

    def _oversized_body(self, length: int) -> tuple[int, dict]:
        """The 400 payload for a too-large body; subclasses map it to 413."""
        error = ValidationError(
            f"request body too large ({length} bytes > {self.max_body_bytes})"
        )
        return self.dispatcher.error_response(error)

    def _handle(
        self,
        conn: _Connection,
        method: str,
        path: str,
        body: bytes,
        close_requested: bool,
        headers: dict[str, str],
    ) -> None:
        dispatcher = self.dispatcher
        if method == "GET":
            status, payload = dispatcher.get(path)
            self._respond(conn, status, payload, close=close_requested)
            return
        if method != "POST":
            status, payload = dispatcher.not_found(f"no route {path!r}")
            self._respond(conn, status, payload, close=close_requested)
            return
        try:
            payload = parse_json_body(body if body else b"{}")
            kind, name = dispatcher.parse_post_route(path)
            if kind != "predict":
                # feedback and /loop/tick are quick, blocking calls; run
                # them inline through the shared dispatcher so both
                # transports return bitwise-identical bodies.
                status, out = dispatcher.post(path, payload)
                self._respond(conn, status, out, close=close_requested)
                return
            rows = dispatcher.rows_of(payload)
            service = dispatcher.service_for(name, pick=True)
            pending, model, version = service.begin_predict(rows, self._make_on_complete(conn))
        except RouteNotFound as error:
            status, out = dispatcher.not_found(str(error))
            self._respond(conn, status, out, close=close_requested)
            return
        except (ValidationError, ServeError) as error:
            status, out = dispatcher.error_response(error)
            self._respond(conn, status, out, close=close_requested)
            return
        conn.inflight = _Inflight(
            pending, service, model, version, service.config.request_timeout, close_requested
        )

    def _make_on_complete(self, conn: _Connection):
        def on_complete(pending):
            # Batcher thread → loop thread: enqueue and poke the wakeup pipe.
            self._completions.append((conn, pending))
            self._wake()

        return on_complete

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full ⇒ the loop is already waking up

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _drain_completions(self) -> None:
        while True:
            try:
                conn, pending = self._completions.popleft()
            except IndexError:
                return
            inflight = conn.inflight
            if not conn.open or inflight is None or inflight.pending is not pending:
                continue  # connection died, or the request already timed out
            conn.inflight = None
            if pending.error is not None:
                status, payload = self._error_payload(pending.error)
            else:
                status, payload = 200, render_prediction(inflight.model, inflight.version, pending.result)
            self._respond(conn, status, payload, close=inflight.close_requested)
            self._parse(conn)  # a pipelined next request may already be buffered

    def _error_payload(self, error: BaseException) -> tuple[int, dict]:
        try:
            return self.dispatcher.error_response(error)
        except BaseException:
            return 500, {"error": str(error), "type": type(error).__name__}

    def _expire(self) -> None:
        now = monotonic()
        for conn in list(self._connections):
            if not conn.open:
                continue
            inflight = conn.inflight
            if inflight is not None:
                remaining = inflight.deadline.remaining()
                if remaining is not None and remaining <= 0:
                    conn.inflight = None  # a late completion will be ignored
                    inflight.service.metrics_registry.counter("timeouts").inc()
                    error = RequestTimeoutError(
                        f"no reply within {inflight.timeout:.3f}s (service overloaded or wedged)"
                    )
                    status, payload = self.dispatcher.error_response(error)
                    self._respond(conn, status, payload, close=inflight.close_requested)
                    self._parse(conn)
            elif (
                self.idle_timeout is not None
                and not conn.wbuf
                and now - conn.last_activity > self.idle_timeout
            ):
                self._close_conn(conn)

    # -- writing -----------------------------------------------------------

    def _respond(self, conn: _Connection, status: int, payload: dict, *, close: bool = False) -> None:
        self._respond_bytes(
            conn, status, json.dumps(payload).encode("utf-8"), "application/json", close=close
        )

    def _respond_bytes(
        self,
        conn: _Connection,
        status: int,
        body: bytes,
        content_type: str,
        *,
        extra_headers: dict[str, str] | None = None,
        close: bool = False,
    ) -> None:
        """Queue a raw response body (JSON or binary) on the write buffer.

        The JSON ``_respond`` is a thin wrapper over this; the artifact
        store's event-loop transport uses it directly to ship pickled
        blobs with their digest header.
        """
        if not conn.open:
            return
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        if close or self._closing.is_set():
            head += "Connection: close\r\n"
            conn.close_after_write = True
        head += "\r\n"
        conn.wbuf += head.encode("latin-1") + body
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        if not conn.open:
            return
        try:
            while conn.wbuf:
                sent = conn.sock.send(conn.wbuf)
                if sent == 0:
                    break
                del conn.wbuf[:sent]
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_conn(conn)
            return
        conn.last_activity = monotonic()
        if conn.wbuf:
            self._set_events(conn, selectors.EVENT_READ | selectors.EVENT_WRITE)
        else:
            self._set_events(conn, selectors.EVENT_READ)
            if conn.close_after_write:
                self._close_conn(conn)


def serve_async_http(
    service: ServeService | ModelRouter,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    idle_timeout: float | None = 30.0,
    max_connections: int = 1024,
) -> AsyncHTTPServer:
    """Bind and background-start the event-loop server for ``service``."""
    server = AsyncHTTPServer(
        service, host, port, idle_timeout=idle_timeout, max_connections=max_connections
    )
    server.serve_background()
    return server
