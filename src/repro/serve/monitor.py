"""Online uncertainty monitoring: the feedback loop applied per request.

Offline, the paper's algorithm hands the operator a subspace where the
committee disagrees and asks for more labeled data there.  Online, the
same artifact becomes a per-request test: *is this incoming point inside
a region the committee was already known to be confused about, or does
the committee disagree about it right now?*  A point is flagged
``in_uncertain_region`` when either holds:

- **region membership** — the point lies inside the registered
  Within-ALE feedback subspace (``FeedbackReport.region``, the paper's
  ``∪ᵢ Aᵢx ≤ bᵢ``), tested through the compiled bounds fast path of
  :meth:`SubspaceUnion.contains`;
- **live disagreement** — the committee's per-point predicted-probability
  standard deviation (max over classes, matching the feedback analyzer's
  default ``class_aggregation='max'``) exceeds the report's threshold.

Flagged points accumulate in a bounded :class:`LabelingQueue` — the
serving-side analogue of the paper's "collect more data here" output:
an operator drains the queue, labels the points, and retrains.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any

import numpy as np

from ..core.feedback import FeedbackReport
from ..exceptions import ValidationError

__all__ = ["LabelingQueue", "UncertaintyMonitor", "committee_disagreement"]


def committee_disagreement(member_stack: np.ndarray) -> np.ndarray:
    """Per-point committee disagreement from a member-probability stack.

    ``member_stack`` has shape ``(n_members, n_points, n_classes)`` — the
    output of :meth:`EnsembleClassifier.member_proba`.  Returns shape
    ``(n_points,)``: the standard deviation across members, maximized over
    classes (a point is uncertain if the committee splits on *any* class).
    """
    member_stack = np.asarray(member_stack, dtype=np.float64)
    if member_stack.ndim != 3:
        raise ValidationError(f"member stack must be (members, points, classes), got shape {member_stack.shape}")
    return member_stack.std(axis=0).max(axis=1)


class LabelingQueue:
    """Bounded FIFO of uncertain points awaiting operator labels.

    Thread-safe.  When full, the *newest* candidate is dropped (and
    counted) rather than evicting older entries: the queue represents an
    operator's backlog, and silently rotating it would hide how far
    behind labeling has fallen.

    With ``snapshot_path`` set the queue is durable: every offer and
    drain is journaled to an append-only JSONL file, and a fresh queue
    pointed at the same path replays the journal to restore its pending
    backlog.  Journal writes are best-effort — a full disk degrades the
    queue to in-memory, it never fails serving.
    """

    def __init__(self, capacity: int = 1024, *, snapshot_path: str | None = None):
        if capacity < 1:
            raise ValidationError(f"labeling queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.snapshot_path = snapshot_path
        self._lock = threading.Lock()
        self._entries: deque = deque()
        self._enqueued = 0
        self._dropped = 0
        self._persisted = 0
        if snapshot_path is not None:
            self._restore(snapshot_path)

    def _restore(self, path: str) -> None:
        """Replay the journal; torn or corrupt lines are skipped, not fatal."""
        try:
            with open(path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a crash mid-write
            op = record.get("op")
            if op == "offer" and isinstance(record.get("entry"), dict):
                if len(self._entries) < self.capacity:
                    self._entries.append(record["entry"])
            elif op == "drain":
                count = record.get("count")
                if isinstance(count, int) and count > 0:
                    for _ in range(min(count, len(self._entries))):
                        self._entries.popleft()

    def _append(self, record: dict[str, Any]) -> None:
        """Best-effort journal write; caller holds the lock."""
        if self.snapshot_path is None:
            return
        try:
            directory = os.path.dirname(self.snapshot_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.snapshot_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._persisted += 1
        except OSError:
            pass  # disk trouble must never take down serving

    def offer(self, entry: dict[str, Any]) -> bool:
        """Enqueue one candidate; returns False (and counts a drop) when full."""
        with self._lock:
            if len(self._entries) >= self.capacity:
                self._dropped += 1
                return False
            self._entries.append(entry)
            self._enqueued += 1
            self._append({"op": "offer", "entry": entry})
            return True

    def drain(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Remove and return up to ``limit`` oldest entries (all by default)."""
        with self._lock:
            take = len(self._entries) if limit is None else max(0, min(limit, len(self._entries)))
            drained = [self._entries.popleft() for _ in range(take)]
            if drained:
                self._append({"op": "drain", "count": len(drained)})
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "depth": len(self._entries),
                "capacity": self.capacity,
                "enqueued": self._enqueued,
                "dropped": self._dropped,
                "persisted": self._persisted,
            }


class UncertaintyMonitor:
    """Evaluate each served batch against the registered feedback artifact.

    Parameters
    ----------
    report:
        The :class:`FeedbackReport` registered with the model — supplies
        both the precompiled subspace ``region`` and the disagreement
        ``threshold``.
    disagreement_threshold:
        Override for the live-disagreement cutoff; default is the
        report's own threshold (the offline and online notions of "too
        much disagreement" coincide unless the operator says otherwise).
    queue_capacity:
        Bound on the labeling queue.
    snapshot_path:
        Forwarded to :class:`LabelingQueue` — a JSONL journal path that
        makes the backlog survive restarts.
    """

    def __init__(
        self,
        report: FeedbackReport,
        *,
        disagreement_threshold: float | None = None,
        queue_capacity: int = 1024,
        snapshot_path: str | None = None,
    ):
        self.report = report
        self.disagreement_threshold = (
            float(disagreement_threshold) if disagreement_threshold is not None else float(report.threshold)
        )
        self.queue = LabelingQueue(queue_capacity, snapshot_path=snapshot_path)

    def evaluate(self, X: np.ndarray, member_stack: np.ndarray) -> dict[str, np.ndarray]:
        """Flag uncertain points in one batch; feed flagged ones to the queue.

        Returns per-point arrays: ``in_region`` (subspace membership),
        ``disagreement`` (live committee std), and ``uncertain``
        (the OR of membership and above-threshold disagreement — the
        ``in_uncertain_region`` flag each response carries).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        in_region = (
            self.report.region.contains(X) if self.report.region else np.zeros(X.shape[0], dtype=bool)
        )
        disagreement = committee_disagreement(member_stack)
        uncertain = in_region | (disagreement > self.disagreement_threshold)
        for index in np.flatnonzero(uncertain):
            self.queue.offer(
                {
                    "point": X[index].tolist(),
                    "in_feedback_region": bool(in_region[index]),
                    "disagreement": float(disagreement[index]),
                }
            )
        return {"in_region": in_region, "disagreement": disagreement, "uncertain": uncertain}
