"""Serving observability: counters, histograms, and one snapshot call.

Every number the service exposes on ``/metrics`` flows through this
module: monotonically increasing :class:`Counter` values (requests,
points, sheds, uncertain hits) and :class:`Histogram` samples (batch
sizes, queue depth at enqueue, per-request latency) summarized as
count/sum/quantiles.  The design constraints are the serving layer's:

- **thread-safe** — the HTTP handler threads, the batcher thread, and
  test harnesses all record concurrently, so every mutation holds the
  owning :class:`MetricsRegistry` lock;
- **bounded memory** — a histogram keeps a fixed-capacity ring of recent
  samples for quantile estimates while ``count``/``sum`` stay exact, so a
  long-lived service cannot grow without bound;
- **deterministic** — no clocks, no sampling randomness; time only enters
  as values *observed into* histograms by callers that own a stopwatch.

Quantiles are reported as ``p50``/``p95``/``p99`` over the retained
window using the linear-interpolation definition of
:func:`numpy.quantile`, which is what the serving benchmark records.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from ..exceptions import ValidationError

__all__ = ["Counter", "Histogram", "MetricsRegistry"]

#: Samples a histogram retains for quantile estimation.  Counters stay
#: exact forever; only the quantile window is bounded.
DEFAULT_WINDOW = 4096

#: The quantiles ``snapshot()`` reports, as (label, q) pairs.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class Counter:
    """A monotonically increasing count.  Mutate via ``inc`` only."""

    def __init__(self, name: str, lock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError(f"counters only increase; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """Exact count/sum plus a bounded sample window for quantiles.

    The window is a ring buffer: once ``window`` samples have been
    observed, each new sample overwrites the oldest, so quantiles track
    recent behaviour while memory stays fixed.
    """

    def __init__(self, name: str, lock, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValidationError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self._lock = lock
        self._samples = np.zeros(window, dtype=np.float64)
        self._next = 0
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._samples.shape[0]
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> dict[str, float | int]:
        """Count, sum, mean, max and the configured quantiles."""
        with self._lock:
            count = self._count
            total = self._sum
            window = self._samples[: min(count, self._samples.shape[0])].copy()
        if count == 0:
            return {"count": 0, "sum": 0.0}
        stats: dict[str, float | int] = {
            "count": count,
            "sum": float(total),
            "mean": float(total / count),
            "max": float(window.max()),
        }
        for label, q in QUANTILES:
            stats[label] = float(np.quantile(window, q))
        return stats


class MetricsRegistry:
    """Named counters and histograms behind one lock and one snapshot.

    ``counter(name)``/``histogram(name)`` create on first use and return
    the same instrument afterwards, so instrument identity is a name, not
    an object handed around.  ``snapshot()`` is the ``/metrics`` payload:
    plain JSON-serializable scalars, taken under the registry lock so the
    counters in one snapshot are mutually consistent.
    """

    def __init__(self):
        # Reentrant: snapshot() reads every instrument under the registry
        # lock, and each instrument accessor re-acquires the same lock.
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name in self._histograms:
                raise ValidationError(f"metric {name!r} is already a histogram")
            if name not in self._counters:
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def histogram(self, name: str, window: int = DEFAULT_WINDOW) -> Histogram:
        with self._lock:
            if name in self._counters:
                raise ValidationError(f"metric {name!r} is already a counter")
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, self._lock, window)
            return self._histograms[name]

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-ready mapping, mutually consistent."""
        with self._lock:
            return {
                "counters": {name: counter.value for name, counter in sorted(self._counters.items())},
                "histograms": {name: hist.summary() for name, hist in sorted(self._histograms.items())},
            }
