"""The serving façade: registry + engine + monitor behind four operations.

:class:`ServeService` is the single object both transports (the HTTP
server and the in-process client) talk to.  It owns exactly the four
operations the JSON API exposes:

- ``predict(rows)``   → labels, probabilities, uncertainty verdicts;
- ``feedback(limit)`` → drain the labeling queue (the paper's "collect
  more data here" output, served as candidates to label);
- ``healthz()``       → liveness plus which model/version is serving;
- ``metrics()``       → the engine's counters and latency histograms.

Keeping the transports this thin means every concurrency/correctness
test can run against the service in-process and still exercise the same
code the HTTP path does.

Hot-swapping: the retraining loop promotes new versions *into a running
service*.  All mutable serving state lives in one ``_state`` tuple
``(bundle, version, engine)`` replaced by a single attribute assignment
(atomic in CPython), and every operation reads the tuple exactly once —
so a concurrent request observes wholly the old version or wholly the
new one, never a torn mix.  The service owns one
:class:`MetricsRegistry` shared across every engine it creates, so
counters and histograms survive swaps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .engine import InferenceEngine, Prediction, ServeConfig
from .metrics import MetricsRegistry
from .registry import ModelBundle, ModelRegistry

__all__ = ["ServeService", "render_prediction"]


def render_prediction(name: str, version: int | None, prediction: Prediction) -> dict[str, Any]:
    """Assemble the one true ``/predict`` response payload.

    Every transport — blocking in-process, threaded HTTP, async HTTP —
    renders through this function, so the served JSON is bitwise
    identical regardless of which path a request took.
    """
    return {"model": name, "version": version, **prediction.to_json()}


class ServeService:
    """One deployed model bundle plus its inference engine, hot-swappable."""

    def __init__(
        self,
        bundle: ModelBundle,
        config: ServeConfig | None = None,
        *,
        version: int | None = None,
        registry: ModelRegistry | None = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.registry = registry
        self.metrics_registry = MetricsRegistry()
        engine = InferenceEngine(bundle, self.config, metrics=self.metrics_registry)
        self._state: tuple[ModelBundle, int | None, InferenceEngine] = (bundle, version, engine)

    # Back-compat views onto the atomic state tuple: existing tests (and
    # transports) read service.bundle / .version / .engine directly.

    @property
    def bundle(self) -> ModelBundle:
        return self._state[0]

    @property
    def version(self) -> int | None:
        return self._state[1]

    @property
    def engine(self) -> InferenceEngine:
        return self._state[2]

    @classmethod
    def from_registry(
        cls,
        name: str,
        *,
        directory: Path | str | None = None,
        version: int | None = None,
        config: ServeConfig | None = None,
        persist_labels: bool = False,
    ) -> "ServeService":
        """Load ``name`` (promoted version by default) and start serving it.

        With ``persist_labels=True`` the labeling queue journals to
        ``<registry dir>/labeling/<name>.jsonl`` so the backlog of
        uncertain points survives restarts.
        """
        registry = ModelRegistry(directory)
        bundle = registry.load(name, version)
        resolved = version if version is not None else registry.promoted_version(name)
        if persist_labels and (config is None or config.labeling_snapshot is None):
            snapshot = str(registry.directory / "labeling" / f"{name}.jsonl")
            base = config if config is not None else ServeConfig()
            config = ServeConfig(
                max_batch=base.max_batch,
                max_delay=base.max_delay,
                queue_bound=base.queue_bound,
                request_timeout=base.request_timeout,
                disagreement_threshold=base.disagreement_threshold,
                labeling_queue_capacity=base.labeling_queue_capacity,
                labeling_snapshot=snapshot,
            )
        return cls(bundle, config, version=resolved, registry=registry)

    # -- hot swap ----------------------------------------------------------

    def swap(self, bundle: ModelBundle, *, version: int | None = None) -> None:
        """Atomically replace the serving bundle; the old engine drains.

        The new engine shares the service's metrics registry, starts
        serving the moment ``_state`` is reassigned, and the old engine
        is closed *afterwards* so its queued requests still complete
        against the version they were submitted to.
        """
        old_engine = self._state[2]
        engine = InferenceEngine(bundle, self.config, metrics=self.metrics_registry)
        self._state = (bundle, version, engine)
        old_engine.close()

    def reload(self, version: int | None = None) -> int | None:
        """Re-load from the registry (promoted version by default) and swap.

        Requires the service to have been built via :meth:`from_registry`
        (or with an explicit ``registry=``).  Returns the version now
        serving.  A no-op when the requested version is already serving.
        """
        if self.registry is None:
            raise ValueError("reload() needs a registry; build the service with from_registry()")
        name = self._state[0].name
        resolved = version if version is not None else self.registry.promoted_version(name)
        if resolved is not None and resolved == self._state[1]:
            return resolved
        bundle = self.registry.load(name, version)
        self.swap(bundle, version=resolved)
        return resolved

    # -- the four API operations ------------------------------------------

    def predict(self, rows, *, timeout: float | None = None) -> dict[str, Any]:
        """Predict one request's rows; returns the JSON-shaped response."""
        bundle, version, engine = self._state
        prediction = engine.predict(rows, timeout=timeout)
        return render_prediction(bundle.name, version, prediction)

    def begin_predict(self, rows, on_complete) -> tuple[Any, str, int | None]:
        """Submit without waiting: the event-loop transport's entry point.

        Sheds (:class:`~repro.exceptions.BackpressureError`) or rejects
        (:class:`~repro.exceptions.ValidationError`) immediately;
        otherwise returns ``(pending, model_name, version)`` and
        ``on_complete(pending)`` fires from the batcher thread once
        ``pending.result``/``pending.error`` is set.  Render the reply
        with :func:`render_prediction` using the returned name/version so
        a hot swap mid-request cannot tear the response.
        """
        bundle, version, engine = self._state
        pending = engine.submit(rows, on_complete=on_complete)
        return pending, bundle.name, version

    def feedback(self, limit: int | None = None) -> dict[str, Any]:
        """Drain up to ``limit`` uncertain points awaiting labels."""
        bundle, version, engine = self._state
        queue = engine.monitor.queue
        return {
            "model": bundle.name,
            "version": version,
            "candidates": queue.drain(limit),
            "queue": queue.stats(),
        }

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait for in-flight requests (incl. shadow work) to finish."""
        return self._state[2].quiesce(timeout)

    def healthz(self) -> dict[str, Any]:
        bundle, version, _ = self._state
        return {
            "status": "ok",
            "model": bundle.name,
            "version": version,
            "n_features": bundle.n_features,
            "feature_names": [domain.name for domain in bundle.domains],
            "classes": bundle.classes,
        }

    def metrics(self) -> dict[str, Any]:
        _, _, engine = self._state
        snapshot = self.metrics_registry.snapshot()
        snapshot["labeling_queue"] = engine.monitor.queue.stats()
        return snapshot

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._state[2].close()

    def __enter__(self) -> "ServeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
