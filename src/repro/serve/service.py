"""The serving façade: registry + engine + monitor behind four operations.

:class:`ServeService` is the single object both transports (the HTTP
server and the in-process client) talk to.  It owns exactly the four
operations the JSON API exposes:

- ``predict(rows)``   → labels, probabilities, uncertainty verdicts;
- ``feedback(limit)`` → drain the labeling queue (the paper's "collect
  more data here" output, served as candidates to label);
- ``healthz()``       → liveness plus which model/version is serving;
- ``metrics()``       → the engine's counters and latency histograms.

Keeping the transports this thin means every concurrency/correctness
test can run against the service in-process and still exercise the same
code the HTTP path does.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .engine import InferenceEngine, ServeConfig
from .registry import ModelBundle, ModelRegistry

__all__ = ["ServeService"]


class ServeService:
    """One deployed model bundle plus its inference engine."""

    def __init__(self, bundle: ModelBundle, config: ServeConfig | None = None, *, version: int | None = None):
        self.bundle = bundle
        self.version = version
        self.engine = InferenceEngine(bundle, config)

    @classmethod
    def from_registry(
        cls,
        name: str,
        *,
        directory: Path | str | None = None,
        version: int | None = None,
        config: ServeConfig | None = None,
    ) -> "ServeService":
        """Load ``name`` (promoted version by default) and start serving it."""
        registry = ModelRegistry(directory)
        bundle = registry.load(name, version)
        resolved = version if version is not None else registry.promoted_version(name)
        return cls(bundle, config, version=resolved)

    # -- the four API operations ------------------------------------------

    def predict(self, rows, *, timeout: float | None = None) -> dict[str, Any]:
        """Predict one request's rows; returns the JSON-shaped response."""
        prediction = self.engine.predict(rows, timeout=timeout)
        return {"model": self.bundle.name, "version": self.version, **prediction.to_json()}

    def feedback(self, limit: int | None = None) -> dict[str, Any]:
        """Drain up to ``limit`` uncertain points awaiting labels."""
        queue = self.engine.monitor.queue
        return {
            "model": self.bundle.name,
            "version": self.version,
            "candidates": queue.drain(limit),
            "queue": queue.stats(),
        }

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "model": self.bundle.name,
            "version": self.version,
            "n_features": self.bundle.n_features,
            "feature_names": [domain.name for domain in self.bundle.domains],
            "classes": self.bundle.classes,
        }

    def metrics(self) -> dict[str, Any]:
        snapshot = self.engine.metrics.snapshot()
        snapshot["labeling_queue"] = self.engine.monitor.queue.stats()
        return snapshot

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ServeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
