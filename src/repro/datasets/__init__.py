"""Datasets for the paper's two running examples.

- :func:`generate_scream_dataset` / :class:`ScreamOracle` — the
  congestion-control example, labeled by the :mod:`repro.netsim` emulator;
- :func:`generate_firewall_dataset` — synthetic internet-firewall logs
  standing in for the UCI dataset of §4.2;
- :mod:`repro.datasets.splits` — the paper's train/test×20/pool protocol.
"""

from .firewall import FIREWALL_ACTIONS, FIREWALL_FEATURES, firewall_domains, generate_firewall_dataset
from .scream import (
    SCREAM_NEGATIVE,
    SCREAM_POSITIVE,
    LabeledDataset,
    ScreamOracle,
    generate_scream_dataset,
)
from .splits import (
    PAPER_FIREWALL,
    PAPER_SCREAM,
    SplitBundle,
    make_test_sets,
    split_train_test_pool,
)

__all__ = [
    "LabeledDataset",
    "ScreamOracle",
    "generate_scream_dataset",
    "SCREAM_POSITIVE",
    "SCREAM_NEGATIVE",
    "generate_firewall_dataset",
    "FIREWALL_FEATURES",
    "FIREWALL_ACTIONS",
    "firewall_domains",
    "SplitBundle",
    "make_test_sets",
    "split_train_test_pool",
    "PAPER_SCREAM",
    "PAPER_FIREWALL",
]
