"""Synthetic internet-firewall logs (stand-in for the UCI dataset of §4.2).

The paper's second dataset is the "Internet Firewall Data" set from the UCI
archive: per-session firewall records (ports, NAT ports, byte/packet
counters, elapsed time) with four action classes — ``allow``, ``deny``,
``drop`` and the rare ``reset-both``.  Offline, we generate a synthetic
equivalent from a mixture of traffic archetypes:

- benign services (HTTPS/HTTP/DNS/SSH…) that are allowed;
- policy-blocked service ports (telnet, SMB, RDP…) that are denied;
- scan probes that are dropped;
- a DDoS/SYN-flood component aimed at ports 443–445 with *spoofed source
  ports* and genuinely ambiguous actions.

The last component matters for reproducing §4.2's interpretability story:
low source-port values and destination ports 443–445 occur mostly inside
ambiguous attack traffic, so models trained on this data disagree exactly
there — the generator creates the conditions for the paper's Figure 2
observations rather than hard-coding them.
"""

from __future__ import annotations

import numpy as np

from ..core.subspace import FeatureDomain
from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state
from .scream import LabeledDataset

__all__ = ["FIREWALL_FEATURES", "FIREWALL_ACTIONS", "generate_firewall_dataset", "firewall_domains"]

FIREWALL_FEATURES = [
    "src_port",
    "dst_port",
    "nat_src_port",
    "nat_dst_port",
    "bytes",
    "bytes_sent",
    "bytes_received",
    "packets",
    "pkts_sent",
    "pkts_received",
    "elapsed_s",
]

FIREWALL_ACTIONS = ["allow", "deny", "drop", "reset-both"]

_MAX_BYTES = 5e7
_MAX_PACKETS = 5e4
_MAX_ELAPSED = 3600.0

_ALLOWED_SERVICES = (443, 80, 53, 22, 25, 110, 143, 993, 995, 8080)
_BLOCKED_SERVICES = (23, 135, 137, 139, 445, 1433, 3306, 3389, 5900)


def firewall_domains() -> list[FeatureDomain]:
    """Feature domains matching :data:`FIREWALL_FEATURES` order."""
    port = (0.0, 65535.0)
    return [
        FeatureDomain("src_port", *port, integer=True),
        FeatureDomain("dst_port", *port, integer=True),
        FeatureDomain("nat_src_port", *port, integer=True),
        FeatureDomain("nat_dst_port", *port, integer=True),
        FeatureDomain("bytes", 0.0, _MAX_BYTES),
        FeatureDomain("bytes_sent", 0.0, _MAX_BYTES),
        FeatureDomain("bytes_received", 0.0, _MAX_BYTES),
        FeatureDomain("packets", 0.0, _MAX_PACKETS),
        FeatureDomain("pkts_sent", 0.0, _MAX_PACKETS),
        FeatureDomain("pkts_received", 0.0, _MAX_PACKETS),
        FeatureDomain("elapsed_s", 0.0, _MAX_ELAPSED),
    ]


def _ephemeral_port(rng: np.random.Generator, n: int) -> np.ndarray:
    """Kernel-assigned source ports (the modern Linux ephemeral range)."""
    return rng.integers(32768, 61000, size=n)


def _session_counters(
    rng: np.random.Generator,
    n: int,
    *,
    mean_bytes: float,
    reply_ratio: float,
    mean_packets: float,
    mean_elapsed: float,
) -> np.ndarray:
    """Byte/packet/elapsed columns for ``n`` sessions of one archetype."""
    bytes_sent = np.minimum(rng.lognormal(np.log(mean_bytes), 1.0, size=n), _MAX_BYTES / 2)
    bytes_received = np.minimum(
        bytes_sent * reply_ratio * rng.lognormal(0.0, 0.5, size=n), _MAX_BYTES / 2
    )
    pkts_sent = np.minimum(
        np.maximum(1, rng.poisson(mean_packets, size=n)), _MAX_PACKETS / 2
    ).astype(float)
    pkts_received = np.minimum(
        np.round(pkts_sent * reply_ratio * rng.uniform(0.5, 1.2, size=n)), _MAX_PACKETS / 2
    )
    elapsed = np.minimum(rng.exponential(mean_elapsed, size=n), _MAX_ELAPSED)
    return np.column_stack(
        [
            bytes_sent + bytes_received,
            bytes_sent,
            bytes_received,
            pkts_sent + pkts_received,
            pkts_sent,
            pkts_received,
            elapsed,
        ]
    )


def _benign(rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Allowed service traffic: NATed, two-way, long-lived sessions."""
    service_weights = np.array([0.45, 0.18, 0.18, 0.05, 0.03, 0.02, 0.02, 0.03, 0.02, 0.02])
    dst = rng.choice(_ALLOWED_SERVICES, size=n, p=service_weights / service_weights.sum())
    src = _ephemeral_port(rng, n)
    nat_src = _ephemeral_port(rng, n)
    nat_dst = dst.copy()
    small = np.isin(dst, (53,))
    counters = _session_counters(
        rng, n, mean_bytes=4000.0, reply_ratio=2.5, mean_packets=20.0, mean_elapsed=30.0
    )
    counters[small] = _session_counters(
        rng, int(small.sum()), mean_bytes=80.0, reply_ratio=1.5, mean_packets=2.0, mean_elapsed=0.2
    )
    X = np.column_stack([src, dst, nat_src, nat_dst, counters])
    y = np.full(n, "allow", dtype=object)
    return X, y


def _policy_denied(rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Connections to policy-blocked service ports: denied at the firewall."""
    dst = rng.choice(_BLOCKED_SERVICES, size=n)
    src = _ephemeral_port(rng, n)
    counters = _session_counters(
        rng, n, mean_bytes=120.0, reply_ratio=0.0, mean_packets=2.0, mean_elapsed=0.05
    )
    X = np.column_stack([src, dst, np.zeros(n), np.zeros(n), counters])
    y = np.full(n, "deny", dtype=object)
    return X, y


def _scan_probes(rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Port scans: random destinations, sometimes crafted low source ports."""
    dst = rng.integers(1, 65535, size=n)
    crafted = rng.random(n) < 0.4
    src = np.where(crafted, rng.integers(1, 1024, size=n), _ephemeral_port(rng, n))
    counters = _session_counters(
        rng, n, mean_bytes=60.0, reply_ratio=0.0, mean_packets=1.2, mean_elapsed=0.01
    )
    X = np.column_stack([src, dst, np.zeros(n), np.zeros(n), counters])
    y = np.full(n, "drop", dtype=object)
    return X, y


def _ddos_443(rng: np.random.Generator, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flood traffic against 443–445 with spoofed source ports.

    Actions here are *genuinely ambiguous*: the firewall's response depends
    on volumetric thresholds plus unobserved state (SYN cookies, rate
    limiters), modeled as label noise conditioned on the counters.  This is
    the subpopulation that makes ports 443–445 and low source ports the
    high-disagreement regions of §4.2.
    """
    dst = rng.choice((443, 444, 445), size=n, p=(0.5, 0.2, 0.3))
    # Spoofed source ports: uniform over the whole range, so low values —
    # essentially absent from benign traffic — appear here.
    src = rng.integers(1, 65535, size=n)
    counters = _session_counters(
        rng, n, mean_bytes=90.0, reply_ratio=0.05, mean_packets=30.0, mean_elapsed=0.02
    )
    X = np.column_stack([src, dst, np.zeros(n), np.zeros(n), counters])
    pkts_sent = counters[:, 4]
    heavy = pkts_sent > np.median(pkts_sent)
    roll = rng.random(n)
    y = np.where(
        heavy & (roll < 0.35),
        "reset-both",
        np.where(roll < 0.75, "drop", "deny"),
    ).astype(object)
    return X, y


_ARCHETYPES = (
    (_benign, 0.55),
    (_policy_denied, 0.18),
    (_scan_probes, 0.15),
    (_ddos_443, 0.12),
)


def generate_firewall_dataset(
    n_samples: int,
    *,
    label_noise: float = 0.02,
    random_state: RandomState = None,
) -> LabeledDataset:
    """Generate ``n_samples`` synthetic firewall log records.

    ``label_noise`` flips that fraction of labels uniformly to a different
    class, modeling logging glitches and keeps the learning problem from
    being perfectly separable.
    """
    if n_samples < 10:
        raise ValidationError(f"n_samples must be >= 10, got {n_samples}")
    if not 0.0 <= label_noise < 0.5:
        raise ValidationError(f"label_noise must be in [0, 0.5), got {label_noise}")
    rng = check_random_state(random_state)
    weights = np.array([w for _, w in _ARCHETYPES])
    counts = rng.multinomial(n_samples, weights / weights.sum())
    parts_X, parts_y = [], []
    for (generator, _), count in zip(_ARCHETYPES, counts):
        if count == 0:
            continue
        X_part, y_part = generator(rng, int(count))
        parts_X.append(X_part)
        parts_y.append(y_part)
    X = np.vstack(parts_X).astype(np.float64)
    y = np.concatenate(parts_y)

    if label_noise > 0:
        flip = rng.random(n_samples) < label_noise
        for index in np.flatnonzero(flip):
            others = [action for action in FIREWALL_ACTIONS if action != y[index]]
            y[index] = others[int(rng.integers(0, len(others)))]

    order = rng.permutation(n_samples)
    return LabeledDataset(
        X=X[order],
        y=y[order].astype("U10"),
        feature_names=list(FIREWALL_FEATURES),
        domains=firewall_domains(),
        description=f"synthetic internet-firewall logs (n={n_samples}, noise={label_noise})",
    )
