"""The "Scream vs rest" dataset (paper §2.1 example 2, evaluated in §4.1).

The paper labels network conditions with whether the SCReAM protocol
achieves the lowest end-to-end latency, using the Pantheon emulator as the
ground-truth oracle.  Here the oracle is :mod:`repro.netsim`: for a feature
vector (bottleneck bandwidth, RTT, loss rate, concurrent flows) every
protocol is emulated and SCReAM "wins" if it has the best
:meth:`~repro.netsim.FlowMetrics.latency_score`.

Because labels come from an emulator, *any* point the feedback algorithm
suggests can be labeled — the property that separates the paper's
ALE-based feedback from pool-bound active learning.  :class:`ScreamOracle`
is that label-anything capability as an object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.subspace import FeatureDomain
from ..exceptions import ValidationError
from ..netsim.emulator import run_packet_scenario
from ..netsim.fluid import run_fluid_scenario
from ..netsim.cc import PROTOCOLS
from ..netsim.scenarios import DEFAULT_SPACE, ScenarioSpace
from ..rng import RandomState, check_random_state

__all__ = ["LabeledDataset", "ScreamOracle", "generate_scream_dataset", "SCREAM_POSITIVE", "SCREAM_NEGATIVE"]

SCREAM_POSITIVE = 1  # SCReAM achieves the best latency score
SCREAM_NEGATIVE = 0


@dataclass
class LabeledDataset:
    """A feature matrix with labels and feature metadata."""

    X: np.ndarray
    y: np.ndarray
    feature_names: list[str]
    domains: list[FeatureDomain]
    description: str = ""

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y)
        if self.X.shape[0] != self.y.shape[0]:
            raise ValidationError(f"X/y length mismatch: {self.X.shape[0]} vs {self.y.shape[0]}")
        if self.X.shape[1] != len(self.feature_names):
            raise ValidationError(
                f"{self.X.shape[1]} columns but {len(self.feature_names)} feature names"
            )

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def class_balance(self) -> dict:
        labels, counts = np.unique(self.y, return_counts=True)
        return {label: int(count) for label, count in zip(labels.tolist(), counts.tolist())}

    def subset(self, indices) -> "LabeledDataset":
        indices = np.asarray(indices)
        return LabeledDataset(
            X=self.X[indices],
            y=self.y[indices],
            feature_names=list(self.feature_names),
            domains=list(self.domains),
            description=self.description,
        )

    def extended(self, X_new, y_new) -> "LabeledDataset":
        """A new dataset with extra labeled rows appended (feedback loop)."""
        X_new = np.asarray(X_new, dtype=np.float64)
        y_new = np.asarray(y_new)
        return LabeledDataset(
            X=np.vstack([self.X, X_new]),
            y=np.concatenate([self.y, y_new]),
            feature_names=list(self.feature_names),
            domains=list(self.domains),
            description=self.description,
        )

    def save(self, path) -> None:
        """Persist to a ``.npz`` file (features, labels, metadata).

        Emulator-labeled data is expensive to generate; saving lets
        experiment pipelines cache it across processes.
        """
        domain_rows = np.array(
            [(d.name, d.low, d.high, d.integer) for d in self.domains], dtype=object
        )
        np.savez_compressed(
            path,
            X=self.X,
            y=self.y,
            feature_names=np.array(self.feature_names, dtype=object),
            domains=domain_rows,
            description=np.array(self.description),
        )

    @classmethod
    def load(cls, path) -> "LabeledDataset":
        """Load a dataset previously written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as archive:
            domains = [
                FeatureDomain(str(name), float(low), float(high), bool(integer))
                for name, low, high, integer in archive["domains"]
            ]
            return cls(
                X=archive["X"],
                y=archive["y"],
                feature_names=[str(name) for name in archive["feature_names"]],
                domains=domains,
                description=str(archive["description"]),
            )


class ScreamOracle:
    """Labels arbitrary network-condition feature vectors by emulation.

    Parameters
    ----------
    space:
        Feature ranges; out-of-range queries are clipped into the space.
    engine:
        ``'fluid'`` (fast, default) or ``'packet'`` (reference fidelity).
    min_share:
        Qualification threshold for the latency score (see
        :meth:`repro.netsim.FlowMetrics.latency_score`).
    """

    def __init__(
        self,
        space: ScenarioSpace = DEFAULT_SPACE,
        *,
        engine: str = "fluid",
        min_share: float = 0.08,
        random_state: RandomState = None,
    ):
        if engine not in ("fluid", "packet"):
            raise ValidationError(f"engine must be 'fluid' or 'packet', got {engine!r}")
        self.space = space
        self.engine = engine
        self.min_share = min_share
        self._rng = check_random_state(random_state)
        self.queries = 0

    def domains(self) -> list[FeatureDomain]:
        return self.space.domains()

    def score_all_protocols(self, features) -> dict[str, float]:
        """Latency score of every protocol for one feature vector."""
        scenario = self.space.scenario_from_features(features)
        seed = int(self._rng.integers(0, 2**31 - 1))
        scores = {}
        for index, protocol in enumerate(sorted(PROTOCOLS)):
            if self.engine == "fluid":
                metrics = run_fluid_scenario(scenario, protocol, random_state=seed + index)
            else:
                metrics = run_packet_scenario(scenario, protocol, random_state=seed + index)
            scores[protocol] = metrics.latency_score(min_share=self.min_share)
        return scores

    def label_one(self, features) -> int:
        """1 if SCReAM is the (qualified) latency winner, else 0."""
        self.queries += 1
        scores = self.score_all_protocols(features)
        finite = {p: s for p, s in scores.items() if s < float("inf")}
        if not finite:
            return SCREAM_NEGATIVE  # nothing usable; "use scream" is unsupported
        best = min(finite, key=finite.get)
        return SCREAM_POSITIVE if best == "scream" else SCREAM_NEGATIVE

    def label(self, X) -> np.ndarray:
        """Vectorized :meth:`label_one`."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.array([self.label_one(row) for row in X], dtype=np.int64)


def generate_scream_dataset(
    n_samples: int,
    *,
    space: ScenarioSpace = DEFAULT_SPACE,
    engine: str = "fluid",
    biased: bool = False,
    random_state: RandomState = None,
) -> LabeledDataset:
    """Generate a labeled Scream-vs-rest dataset of ``n_samples`` rows.

    ``biased`` draws scenarios from the production-like distribution
    (:meth:`ScenarioSpace.sample_production_biased`) instead of uniformly —
    the collection bias §2.2 argues feedback must overcome.

    Labeling every row runs the network emulator, which makes this the
    most expensive input of an experiment.  The sharded experiment grid
    wraps it as the ``repro.experiments.tasks:scream_dataset`` task
    family, so generated datasets are content-addressed in the runtime's
    artifact cache and a warm rerun skips the emulation entirely.
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    rng = check_random_state(random_state)
    if biased:
        scenarios = space.sample_production_biased(n_samples, rng)
    else:
        scenarios = space.sample(n_samples, rng)
    X = np.array([scenario.as_features() for scenario in scenarios])
    oracle = ScreamOracle(space, engine=engine, random_state=rng)
    y = oracle.label(X)
    return LabeledDataset(
        X=X,
        y=y,
        feature_names=space.feature_names(),
        domains=space.domains(),
        description=f"scream-vs-rest ({engine} engine, {'biased' if biased else 'uniform'} sampling)",
    )
