"""The paper's data-splitting protocol (§4, Datasets).

Both experiments share the same statistical machinery: a training portion,
a held-out portion divided into **20 test sets** (so balanced accuracies
can be compared with a paired Wilcoxon signed-rank test), and an unlabeled
**candidate pool** for the active-learning baselines.

- *Scream vs rest*: fixed counts — 1161 train, 4850 test (→ 20 sets),
  2000 uniformly sampled pool points; feedback adds 280 points.
- *Firewall*: fractions — 40 % train, 20 % test (→ 20 sets), 40 % pool;
  the whole split is repeated 5 times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..ml.model_selection import partition_evenly
from ..rng import RandomState, check_random_state
from .scream import LabeledDataset

__all__ = ["SplitBundle", "split_train_test_pool", "make_test_sets", "PAPER_SCREAM", "PAPER_FIREWALL"]


@dataclass(frozen=True)
class PaperScaleConfig:
    """Dataset sizing knobs with the paper's values as the reference."""

    train: int
    test: int
    pool: int
    feedback_points: int
    n_test_sets: int = 20


PAPER_SCREAM = PaperScaleConfig(train=1161, test=4850, pool=2000, feedback_points=280)
# The firewall dataset uses fractions of 65k rows in the paper; the
# reference config captures the paper's proportions at full scale.
PAPER_FIREWALL = PaperScaleConfig(train=26212, test=13106, pool=26212, feedback_points=280)


@dataclass
class SplitBundle:
    """One experiment's worth of data splits."""

    train: LabeledDataset
    test_sets: list[LabeledDataset]
    pool: LabeledDataset

    @property
    def n_test_sets(self) -> int:
        return len(self.test_sets)

    def describe(self) -> str:
        return (
            f"train={self.train.n_samples}, "
            f"test={sum(t.n_samples for t in self.test_sets)} over {self.n_test_sets} sets, "
            f"pool={self.pool.n_samples}"
        )


def make_test_sets(dataset: LabeledDataset, k: int, *, random_state: RandomState = None) -> list[LabeledDataset]:
    """Partition a held-out dataset into ``k`` roughly equal test sets."""
    rng = check_random_state(random_state)
    parts = partition_evenly(dataset.n_samples, k, rng=rng)
    return [dataset.subset(part) for part in parts]


def split_train_test_pool(
    dataset: LabeledDataset,
    *,
    train_fraction: float = 0.4,
    test_fraction: float = 0.2,
    n_test_sets: int = 20,
    random_state: RandomState = None,
) -> SplitBundle:
    """Fraction-based split (the firewall protocol): train / test×k / pool.

    Whatever is left after train+test becomes the candidate pool.
    """
    if train_fraction <= 0 or test_fraction <= 0 or train_fraction + test_fraction >= 1.0:
        raise ValidationError(
            f"invalid fractions: train={train_fraction}, test={test_fraction}; must leave room for a pool"
        )
    rng = check_random_state(random_state)
    n = dataset.n_samples
    order = rng.permutation(n)
    n_train = int(round(train_fraction * n))
    n_test = int(round(test_fraction * n))
    if min(n_train, n_test, n - n_train - n_test) < 1:
        raise ValidationError(f"dataset of {n} rows is too small for this split")
    train_idx = order[:n_train]
    test_idx = order[n_train : n_train + n_test]
    pool_idx = order[n_train + n_test :]
    test_dataset = dataset.subset(test_idx)
    return SplitBundle(
        train=dataset.subset(train_idx),
        test_sets=make_test_sets(test_dataset, n_test_sets, random_state=rng),
        pool=dataset.subset(pool_idx),
    )
