"""Primitive feature-space types shared across layers.

:class:`Interval` and :class:`FeatureDomain` describe *where data lives* —
a 1-D range and a named feature with its valid range.  They sit below
``repro.core`` in the layer DAG (DESIGN §3) because substrates need them
too: ``repro.netsim`` describes its scenario space with feature domains,
yet must not depend on the interpretation core that consumes those domains.
The richer subspace algebra (interval unions, boxes, ``Ax ≤ b`` systems)
stays in :mod:`repro.core.subspace`, which re-exports these types so
existing import sites keep working.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import SubspaceError

__all__ = ["Interval", "FeatureDomain"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` on the real line."""

    low: float
    high: float

    def __post_init__(self):
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise SubspaceError(f"interval bounds must be finite, got [{self.low}, {self.high}]")
        if self.low > self.high:
            raise SubspaceError(f"interval low {self.low} exceeds high {self.high}")

    @property
    def length(self) -> float:
        return self.high - self.low

    def contains(self, value) -> np.ndarray | bool:
        value = np.asarray(value)
        result = (value >= self.low) & (value <= self.high)
        return bool(result) if result.ndim == 0 else result

    def intersects(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def intersection(self, other: "Interval") -> "Interval | None":
        if not self.intersects(other):
            return None
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.length == 0:
            return np.full(n, self.low)
        return rng.uniform(self.low, self.high, size=n)

    def __str__(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class FeatureDomain:
    """A named feature with its valid value range.

    ``integer`` marks features that only take integer values (ports, flow
    counts); sampling rounds accordingly.
    """

    name: str
    low: float
    high: float
    integer: bool = False

    def __post_init__(self):
        if self.low >= self.high:
            raise SubspaceError(f"domain for {self.name!r} is empty: [{self.low}, {self.high}]")

    @property
    def interval(self) -> Interval:
        return Interval(self.low, self.high)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        values = rng.uniform(self.low, self.high, size=n)
        return np.round(values) if self.integer else values
