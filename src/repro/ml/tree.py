"""CART decision trees (classification and regression).

A from-scratch, numpy-vectorized CART implementation.  The split search at
each node sorts the node's samples once per candidate feature and evaluates
every split position with prefix sums, so growing is ``O(features · n log n)``
per node.  Trees are stored as flat arrays (``children_left`` /
``children_right`` / ``feature`` / ``threshold`` / ``value``), which keeps
prediction a tight vectorized loop and makes the structure easy to inspect
in tests.

The regression tree is used by :mod:`repro.ml.boosting` to fit gradient
residuals; the classifier is used directly and inside the forests.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_NO_FEATURE = -1
_LEAF = -1


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate a max_features spec into a concrete column count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError(f"max_features fraction must be in (0, 1], got {max_features}")
        return max(1, int(round(max_features * n_features)))
    if isinstance(max_features, (int, np.integer)):
        if not 1 <= max_features <= n_features:
            raise ValidationError(f"max_features must be in [1, {n_features}], got {max_features}")
        return int(max_features)
    raise ValidationError(f"unsupported max_features spec: {max_features!r}")


class _Split:
    """Best split found for one node (feature, threshold, impurity gain)."""

    __slots__ = ("feature", "threshold", "gain")

    def __init__(self, feature: int, threshold: float, gain: float):
        self.feature = feature
        self.threshold = threshold
        self.gain = gain


class _TreeGrower:
    """Shared recursive growth logic for classification and regression.

    Subclass hooks:

    - ``_node_value(indices)``   -> leaf payload (probability vector / mean)
    - ``_node_impurity(indices)``-> scalar impurity of the node
    - ``_split_scores(order, column)`` -> impurity-weighted score of every
      split position for one sorted feature column.
    """

    def __init__(
        self,
        *,
        max_depth,
        min_samples_split,
        min_samples_leaf,
        min_impurity_decrease,
        max_features,
        splitter,
        rng,
    ):
        self.max_depth = np.inf if max_depth is None else max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.splitter = splitter
        self.rng = rng

    # -- hooks -----------------------------------------------------------
    def _node_value(self, indices: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, indices: np.ndarray) -> float:
        raise NotImplementedError

    def _split_scores(self, indices: np.ndarray, column: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _is_pure(self, indices: np.ndarray) -> bool:
        raise NotImplementedError

    # -- growth ----------------------------------------------------------
    def grow(self, X: np.ndarray) -> dict[str, np.ndarray]:
        self._X = X
        nodes: list[dict] = []
        self._grow_node(np.arange(X.shape[0]), depth=0, nodes=nodes)
        n = len(nodes)
        tree = {
            "children_left": np.full(n, _LEAF, dtype=np.int64),
            "children_right": np.full(n, _LEAF, dtype=np.int64),
            "feature": np.full(n, _NO_FEATURE, dtype=np.int64),
            "threshold": np.full(n, np.nan, dtype=np.float64),
            "n_samples": np.zeros(n, dtype=np.int64),
            "value": np.vstack([node["value"] for node in nodes]),
        }
        for i, node in enumerate(nodes):
            tree["children_left"][i] = node["left"]
            tree["children_right"][i] = node["right"]
            tree["feature"][i] = node["feature"]
            tree["threshold"][i] = node["threshold"]
            tree["n_samples"][i] = node["n_samples"]
        return tree

    def _grow_node(self, indices: np.ndarray, *, depth: int, nodes: list[dict]) -> int:
        node_id = len(nodes)
        node = {
            "left": _LEAF,
            "right": _LEAF,
            "feature": _NO_FEATURE,
            "threshold": np.nan,
            "n_samples": indices.size,
            "value": self._node_value(indices),
        }
        nodes.append(node)
        if (
            depth >= self.max_depth
            or indices.size < self.min_samples_split
            or indices.size < 2 * self.min_samples_leaf
            or self._is_pure(indices)
        ):
            return node_id
        split = self._find_best_split(indices)
        if split is None or split.gain < self.min_impurity_decrease:
            return node_id
        column = self._X[indices, split.feature]
        left_mask = column <= split.threshold
        left_idx, right_idx = indices[left_mask], indices[~left_mask]
        if left_idx.size < self.min_samples_leaf or right_idx.size < self.min_samples_leaf:
            return node_id
        node["feature"] = split.feature
        node["threshold"] = split.threshold
        node["left"] = self._grow_node(left_idx, depth=depth + 1, nodes=nodes)
        node["right"] = self._grow_node(right_idx, depth=depth + 1, nodes=nodes)
        return node_id

    def _candidate_features(self, n_features: int) -> np.ndarray:
        k = _resolve_max_features(self.max_features, n_features)
        if k >= n_features:
            return np.arange(n_features)
        return self.rng.choice(n_features, size=k, replace=False)

    def _find_best_split(self, indices: np.ndarray) -> _Split | None:
        parent_impurity = self._node_impurity(indices)
        n = indices.size
        best: _Split | None = None
        for feature in self._candidate_features(self._X.shape[1]):
            column = self._X[indices, feature]
            if self.splitter == "random":
                found = self._random_split(indices, int(feature), column, parent_impurity)
            else:
                found = self._exhaustive_split(indices, int(feature), column, parent_impurity, n)
            if found is not None and (best is None or found.gain > best.gain):
                best = found
        return best

    def _exhaustive_split(
        self, indices: np.ndarray, feature: int, column: np.ndarray, parent_impurity: float, n: int
    ) -> _Split | None:
        order = np.argsort(column, kind="stable")
        sorted_col = column[order]
        if sorted_col[0] == sorted_col[-1]:
            return None
        # Split position p puts samples [0, p] on the left: p in 0..n-2.
        scores = self._split_scores(indices[order], sorted_col)
        positions = np.arange(n - 1)
        valid = (sorted_col[:-1] != sorted_col[1:]) & (positions + 1 >= self.min_samples_leaf)
        valid &= (n - positions - 1) >= self.min_samples_leaf
        if not valid.any():
            return None
        scores = np.where(valid, scores, np.inf)
        p = int(np.argmin(scores))
        gain = parent_impurity - scores[p]
        threshold = 0.5 * (sorted_col[p] + sorted_col[p + 1])
        return _Split(feature, float(threshold), float(gain))

    def _random_split(
        self, indices: np.ndarray, feature: int, column: np.ndarray, parent_impurity: float
    ) -> _Split | None:
        lo, hi = column.min(), column.max()
        if lo == hi:
            return None
        threshold = float(self.rng.uniform(lo, hi))
        left = column <= threshold
        n_left = int(left.sum())
        if n_left < self.min_samples_leaf or column.size - n_left < self.min_samples_leaf:
            return None
        weighted = (
            n_left / column.size * self._node_impurity(indices[left])
            + (column.size - n_left) / column.size * self._node_impurity(indices[~left])
        )
        return _Split(feature, threshold, float(parent_impurity - weighted))


class _ClassificationGrower(_TreeGrower):
    def __init__(self, y_encoded: np.ndarray, n_classes: int, criterion: str, **kwargs):
        super().__init__(**kwargs)
        self.y = y_encoded
        self.n_classes = n_classes
        if criterion not in ("gini", "entropy"):
            raise ValidationError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
        self.criterion = criterion

    def _class_counts(self, indices: np.ndarray) -> np.ndarray:
        return np.bincount(self.y[indices], minlength=self.n_classes).astype(np.float64)

    def _impurity_from_counts(self, counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
        """Impurity of count rows; ``totals`` broadcasts against rows."""
        with np.errstate(divide="ignore", invalid="ignore"):
            p = counts / totals
            p = np.where(np.isfinite(p), p, 0.0)
            if self.criterion == "gini":
                return 1.0 - np.sum(p**2, axis=-1)
            logp = np.log2(p, out=np.zeros_like(p), where=p > 0)
            return -np.sum(p * logp, axis=-1)

    def _node_value(self, indices: np.ndarray) -> np.ndarray:
        counts = self._class_counts(indices)
        return counts / counts.sum()

    def _node_impurity(self, indices: np.ndarray) -> float:
        counts = self._class_counts(indices)
        return float(self._impurity_from_counts(counts, counts.sum()))

    def _is_pure(self, indices: np.ndarray) -> bool:
        first = self.y[indices[0]]
        return bool(np.all(self.y[indices] == first))

    def _split_scores(self, sorted_indices: np.ndarray, column: np.ndarray) -> np.ndarray:
        y = self.y[sorted_indices]
        n = y.size
        one_hot = np.zeros((n, self.n_classes), dtype=np.float64)
        one_hot[np.arange(n), y] = 1.0
        left_counts = np.cumsum(one_hot, axis=0)[:-1]  # counts with split after row p
        total = left_counts[-1] + one_hot[-1]
        right_counts = total - left_counts
        n_left = np.arange(1, n, dtype=np.float64)
        n_right = n - n_left
        left_imp = self._impurity_from_counts(left_counts, n_left[:, None])
        right_imp = self._impurity_from_counts(right_counts, n_right[:, None])
        return (n_left / n) * left_imp + (n_right / n) * right_imp


class _RegressionGrower(_TreeGrower):
    def __init__(self, y: np.ndarray, **kwargs):
        super().__init__(**kwargs)
        self.y = y.astype(np.float64)

    def _node_value(self, indices: np.ndarray) -> np.ndarray:
        return np.array([self.y[indices].mean()])

    def _node_impurity(self, indices: np.ndarray) -> float:
        return float(self.y[indices].var())

    def _is_pure(self, indices: np.ndarray) -> bool:
        vals = self.y[indices]
        return bool(np.all(vals == vals[0]))

    def _split_scores(self, sorted_indices: np.ndarray, column: np.ndarray) -> np.ndarray:
        y = self.y[sorted_indices]
        n = y.size
        csum = np.cumsum(y)[:-1]
        csum_sq = np.cumsum(y**2)[:-1]
        total, total_sq = y.sum(), (y**2).sum()
        n_left = np.arange(1, n, dtype=np.float64)
        n_right = n - n_left
        left_var = csum_sq / n_left - (csum / n_left) ** 2
        right_var = (total_sq - csum_sq) / n_right - ((total - csum) / n_right) ** 2
        left_var = np.maximum(left_var, 0.0)
        right_var = np.maximum(right_var, 0.0)
        return (n_left / n) * left_var + (n_right / n) * right_var


def _apply_tree(tree: dict[str, np.ndarray], X: np.ndarray) -> np.ndarray:
    """Return the leaf node id reached by every row of ``X``."""
    node_ids = np.zeros(X.shape[0], dtype=np.int64)
    active = tree["children_left"][node_ids] != _LEAF
    while active.any():
        rows = np.flatnonzero(active)
        current = node_ids[rows]
        feature = tree["feature"][current]
        threshold = tree["threshold"][current]
        go_left = X[rows, feature] <= threshold
        node_ids[rows[go_left]] = tree["children_left"][current[go_left]]
        node_ids[rows[~go_left]] = tree["children_right"][current[~go_left]]
        active = tree["children_left"][node_ids] != _LEAF
    return node_ids


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classification tree.

    Parameters mirror the usual CART knobs.  ``splitter='random'`` evaluates
    one uniformly drawn threshold per candidate feature (the extra-trees
    style split), which is what :class:`repro.ml.forest.ExtraTreesClassifier`
    uses for cheap decorrelated trees.
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features=None,
        criterion: str = "gini",
        splitter: str = "best",
        random_state: RandomState = None,
    ):
        if splitter not in ("best", "random"):
            raise ValidationError(f"splitter must be 'best' or 'random', got {splitter!r}")
        if min_samples_split < 2:
            raise ValidationError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValidationError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.criterion = criterion
        self.splitter = splitter
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        grower = _ClassificationGrower(
            encoded,
            self.n_classes_,
            self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=self.max_features,
            splitter=self.splitter,
            rng=check_random_state(self.random_state),
        )
        self.tree_ = grower.grow(X)
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        leaves = _apply_tree(self.tree_, X)
        return self.tree_["value"][leaves]

    @property
    def n_nodes_(self) -> int:
        check_is_fitted(self, "tree_")
        return int(self.tree_["feature"].shape[0])

    @property
    def depth_(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        check_is_fitted(self, "tree_")
        depths = np.zeros(self.n_nodes_, dtype=np.int64)
        for node in range(self.n_nodes_):
            for child in (self.tree_["children_left"][node], self.tree_["children_right"][node]):
                if child != _LEAF:
                    depths[child] = depths[node] + 1
        return int(depths.max())


class DecisionTreeRegressor(BaseEstimator):
    """CART regression tree minimizing within-node variance (MSE)."""

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features=None,
        splitter: str = "best",
        random_state: RandomState = None,
    ):
        if splitter not in ("best", "random"):
            raise ValidationError(f"splitter must be 'best' or 'random', got {splitter!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.splitter = splitter
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        grower = _RegressionGrower(
            y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=self.max_features,
            splitter=self.splitter,
            rng=check_random_state(self.random_state),
        )
        self.tree_ = grower.grow(X)
        self.n_features_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        leaves = _apply_tree(self.tree_, X)
        return self.tree_["value"][leaves, 0]
