"""Tree ensembles: random forests and extremely randomized trees.

Both average the class-probability outputs of their member trees (soft
voting), which gives smoother probability surfaces — useful both for the
confidence-based active-learning baseline and for ALE interpretation.

Prediction runs through a :class:`repro.ml.kernels.TreeBank`: every member
tree is concatenated into one struct-of-arrays bank and all trees descend
for all rows in a single level-synchronous loop.  The probability
accumulation replays the historical per-member loop's float-operation
order exactly, so the kernel path is bitwise-identical to per-member
prediction (``_predict_proba_per_member`` keeps the legacy loop alive as
the benchmark baseline and equivalence-test reference).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state, spawn
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y
from .kernels import TreeBank, bank_enabled
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "ExtraTreesClassifier"]

#: Deterministic bound on bootstrap redraws per member tree.  A redraw
#: triggers when a bootstrap sample misses all but one class; with every
#: class present in ``y`` the miss probability is at most ``e^-1`` per
#: draw, so the bound is unreachable in practice — it exists to turn a
#: would-be unbounded loop into a typed error.
_MAX_BOOTSTRAP_REDRAWS = 100


def _bootstrap_sample(
    rng, encoded: np.ndarray, n: int, *, max_redraws: int = _MAX_BOOTSTRAP_REDRAWS
) -> np.ndarray:
    """Draw a bootstrap sample keeping >= 2 classes, with a redraw cap.

    A bootstrap draw can miss a class entirely; redraw until at least two
    classes survive so the member tree stays a classifier.  The cap keeps
    the loop deterministic-bounded: exceeding it raises instead of
    spinning (reachable only through a broken generator, since each
    redraw succeeds with probability >= 1 - e^-1 for any ``y`` that
    passed the up-front class-count validation).
    """
    sample = rng.integers(0, n, size=n)
    redraws = 0
    while np.unique(encoded[sample]).size < 2:
        redraws += 1
        if redraws > max_redraws:
            raise ValidationError(
                f"could not draw a bootstrap sample with >= 2 classes in {max_redraws} redraws; "
                "the label distribution is too degenerate for bootstrapped trees"
            )
        sample = rng.integers(0, n, size=n)
    return sample


class _BaseForest(BaseEstimator, ClassifierMixin):
    """Common bagging/averaging machinery for the two forest flavors."""

    _splitter = "best"
    _bootstrap_default = True

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        criterion: str = "gini",
        bootstrap: bool | None = None,
        random_state: RandomState = None,
    ):
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "_BaseForest":
        X, y = check_X_y(X, y)
        # Validate the class count before any bootstrap resampling: a
        # single-class ``y`` can never yield a >= 2-class sample, so the
        # redraw loop below must not be reachable for it.
        if np.unique(y).size < 2:
            raise ValidationError(
                "forest fit needs at least 2 distinct classes in y; no bootstrap sample of a "
                "single-class labelling can train a classifier"
            )
        encoded = self._encode_labels(y)
        rng = check_random_state(self.random_state)
        bootstrap = self._bootstrap_default if self.bootstrap is None else self.bootstrap
        self.estimators_ = []
        n = X.shape[0]
        for child_rng in spawn(rng, self.n_estimators):
            if bootstrap:
                sample = _bootstrap_sample(child_rng, encoded, n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                splitter=self._splitter,
                random_state=child_rng,
            )
            tree.fit(X[sample], encoded[sample])
            self.estimators_.append(tree)
        self.n_features_ = X.shape[1]
        self._bank = None
        return self

    def __getstate__(self):
        # The bank is a pure function of the member trees — rebuild it
        # lazily after unpickling instead of doubling the artifact bytes.
        state = self.__dict__.copy()
        state["_bank"] = None
        return state

    def _tree_bank(self) -> TreeBank:
        """The ensemble-wide kernel, built lazily and cached.

        Member trees may have seen only a subset of the encoded classes
        (bootstrap), so their value blocks scatter into the forest's full
        class space via each tree's ``classes_`` map.
        """
        bank = getattr(self, "_bank", None)
        if bank is None:
            bank = TreeBank(
                [tree.tree_ for tree in self.estimators_],
                value_columns=[tree.classes_.astype(np.int64) for tree in self.estimators_],
                n_value_columns=self.n_classes_,
            )
            self._bank = bank
        return bank

    def _validate_predict_input(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        return X

    def predict_proba(self, X) -> np.ndarray:
        X = self._validate_predict_input(X)
        if not bank_enabled():
            return self._accumulate_member_proba(X)
        bank = self._tree_bank()
        leaves = bank.apply(X)
        # Accumulate in member order, one vectorized add per tree — the
        # identical float-operation sequence the per-member loop performs
        # (class-subset members contribute exact +0.0 in absent columns),
        # so both paths produce bitwise-equal probabilities.
        proba = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        for member_leaves in leaves:
            proba += bank.value[member_leaves]
        proba /= len(self.estimators_)
        return proba

    def _accumulate_member_proba(self, X: np.ndarray) -> np.ndarray:
        """Legacy per-member loop (benchmark baseline / equivalence reference)."""
        proba = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Member trees may have seen a subset of the classes; align columns.
            member_classes = tree.classes_.astype(np.int64)
            proba[:, member_classes] += tree_proba
        proba /= len(self.estimators_)
        return proba

    def _predict_proba_per_member(self, X) -> np.ndarray:
        """Validated entry point for the legacy path (tests, benchmarks)."""
        return self._accumulate_member_proba(self._validate_predict_input(X))


class RandomForestClassifier(_BaseForest):
    """Bagged CART trees with per-split feature subsampling."""

    _splitter = "best"
    _bootstrap_default = True


class ExtraTreesClassifier(_BaseForest):
    """Extremely randomized trees: random thresholds, no bootstrap.

    The extra randomization decorrelates member errors further, which is
    valuable when the AutoML ensemble doubles as a QBC committee.
    """

    _splitter = "random"
    _bootstrap_default = False
