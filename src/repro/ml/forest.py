"""Tree ensembles: random forests and extremely randomized trees.

Both average the class-probability outputs of their member trees (soft
voting), which gives smoother probability surfaces — useful both for the
confidence-based active-learning baseline and for ALE interpretation.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state, spawn
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "ExtraTreesClassifier"]


class _BaseForest(BaseEstimator, ClassifierMixin):
    """Common bagging/averaging machinery for the two forest flavors."""

    _splitter = "best"
    _bootstrap_default = True

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        criterion: str = "gini",
        bootstrap: bool | None = None,
        random_state: RandomState = None,
    ):
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "_BaseForest":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        rng = check_random_state(self.random_state)
        bootstrap = self._bootstrap_default if self.bootstrap is None else self.bootstrap
        self.estimators_ = []
        n = X.shape[0]
        for child_rng in spawn(rng, self.n_estimators):
            if bootstrap:
                sample = child_rng.integers(0, n, size=n)
                # A bootstrap draw can miss a class entirely; redraw until we
                # keep at least two classes so the member tree stays a classifier.
                while np.unique(encoded[sample]).size < 2:
                    sample = child_rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                splitter=self._splitter,
                random_state=child_rng,
            )
            tree.fit(X[sample], encoded[sample])
            self.estimators_.append(tree)
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        proba = np.zeros((X.shape[0], self.n_classes_), dtype=np.float64)
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # Member trees may have seen a subset of the classes; align columns.
            member_classes = tree.classes_.astype(np.int64)
            proba[:, member_classes] += tree_proba
        proba /= len(self.estimators_)
        return proba


class RandomForestClassifier(_BaseForest):
    """Bagged CART trees with per-split feature subsampling."""

    _splitter = "best"
    _bootstrap_default = True


class ExtraTreesClassifier(_BaseForest):
    """Extremely randomized trees: random thresholds, no bootstrap.

    The extra randomization decorrelates member errors further, which is
    valuable when the AutoML ensemble doubles as a QBC committee.
    """

    _splitter = "random"
    _bootstrap_default = False
