"""Flat-array prediction kernels for tree ensembles.

Individual CART trees already store their structure as flat numpy arrays
(:mod:`repro.ml.tree`), but an ensemble that loops over member trees in
Python still pays one full vectorized traversal — plus input validation
and Python call overhead — *per member*.  :class:`TreeBank` removes that
loop: it concatenates every member tree of a forest (or every stage tree
of a boosting model) into one struct-of-arrays bank and descends **all
trees for all rows simultaneously** in a single level-synchronous
vectorized loop.  The loop runs for as many iterations as the deepest
tree, instead of ``n_trees × depth`` iterations, and each iteration
operates on one flat ``(n_trees · n_rows)`` state vector.

Bank layout
-----------

Member trees ``t = 0..T-1`` are laid out back to back; node ``i`` of tree
``t`` lives at global index ``offsets[t] + i``:

- ``children_left`` / ``children_right`` — global child indices (the
  per-tree indices shifted by the tree's offset); leaves keep the ``-1``
  sentinel,
- ``feature`` / ``threshold`` — split definitions, concatenated verbatim,
- ``value`` — leaf payload rows, optionally scattered into a shared
  column space (``value_columns``) so member trees fitted on a class
  *subset* still produce full-width rows,
- ``offsets`` — ``T+1`` prefix sums of the per-tree node counts; the
  roots are ``offsets[:-1]``.

The bank only accelerates *traversal*.  How leaf payloads combine into a
prediction — the accumulation order — stays with the owning ensemble,
which must replay the exact float-operation sequence of its historical
per-member loop so predictions remain bitwise-identical (the contract
the golden-master and serve-identity tests pin).

``per_member_fallback`` routes ensemble predictions back through the
legacy per-member loops; benchmarks use it to measure the kernel win and
equivalence tests use it to prove bitwise identity.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["TreeBank", "per_member_fallback", "bank_enabled"]

_LEAF = -1

#: When False, ensembles route predictions through their legacy
#: per-member Python loops (see :func:`per_member_fallback`).
_BANK_ENABLED = True


def bank_enabled() -> bool:
    """Whether ensembles should use their :class:`TreeBank` fast path."""
    return _BANK_ENABLED


@contextmanager
def per_member_fallback():
    """Temporarily route ensemble predictions through per-member loops.

    The benchmark baseline: inside this context, forests and boosting
    models predict via their historical per-member Python loops instead
    of the :class:`TreeBank` kernel.  Both paths are bitwise-identical by
    contract; the context exists to *measure* the kernel win and to test
    that contract.  Not thread-safe — this flips a module-level flag and
    is meant for benchmarks and tests, never for serving.
    """
    global _BANK_ENABLED
    previous = _BANK_ENABLED
    _BANK_ENABLED = False
    try:
        yield
    finally:
        _BANK_ENABLED = previous


class TreeBank:
    """Struct-of-arrays concatenation of many flat-array trees.

    Parameters
    ----------
    trees:
        Sequence of fitted tree dicts (the ``tree_`` attribute of
        :class:`repro.ml.tree.DecisionTreeClassifier` /
        :class:`~repro.ml.tree.DecisionTreeRegressor`).
    value_columns:
        Optional per-tree integer column maps.  When given, each tree's
        ``value`` block is scattered into a zero matrix of
        ``n_value_columns`` columns, so trees fitted on a label subset
        align with the ensemble's full class set.  Scattering copies the
        stored float64 payloads bit-exactly; the remaining columns are
        ``+0.0``, which accumulation below leaves untouched.
    n_value_columns:
        Width of the shared value space; required with ``value_columns``.
    """

    __slots__ = (
        "children_left",
        "children_right",
        "feature",
        "threshold",
        "value",
        "offsets",
        "n_trees",
    )

    def __init__(
        self,
        trees: Sequence[dict],
        *,
        value_columns: Sequence[np.ndarray] | None = None,
        n_value_columns: int | None = None,
    ):
        trees = list(trees)
        if not trees:
            raise ValidationError("TreeBank needs at least one tree")
        if (value_columns is None) != (n_value_columns is None):
            raise ValidationError("value_columns and n_value_columns must be given together")
        if value_columns is not None and len(value_columns) != len(trees):
            raise ValidationError(
                f"{len(trees)} trees but {len(value_columns)} value column maps"
            )
        sizes = np.array([tree["feature"].shape[0] for tree in trees], dtype=np.int64)
        self.offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(sizes)])
        self.n_trees = len(trees)
        shifted_left, shifted_right = [], []
        for tree, offset in zip(trees, self.offsets[:-1]):
            left, right = tree["children_left"], tree["children_right"]
            shifted_left.append(np.where(left == _LEAF, _LEAF, left + offset))
            shifted_right.append(np.where(right == _LEAF, _LEAF, right + offset))
        self.children_left = np.concatenate(shifted_left)
        self.children_right = np.concatenate(shifted_right)
        self.feature = np.concatenate([tree["feature"] for tree in trees])
        self.threshold = np.concatenate([tree["threshold"] for tree in trees])
        if value_columns is None:
            widths = {tree["value"].shape[1] for tree in trees}
            if len(widths) != 1:
                raise ValidationError(
                    f"trees disagree on value width {sorted(widths)}; pass value_columns to align them"
                )
            self.value = np.concatenate([tree["value"] for tree in trees], axis=0)
        else:
            width = int(n_value_columns)
            blocks = []
            for tree, columns in zip(trees, value_columns):
                columns = np.asarray(columns, dtype=np.int64)
                if columns.shape[0] != tree["value"].shape[1]:
                    raise ValidationError(
                        f"tree has {tree['value'].shape[1]} value columns but the map names {columns.shape[0]}"
                    )
                block = np.zeros((tree["value"].shape[0], width), dtype=np.float64)
                block[:, columns] = tree["value"]
                blocks.append(block)
            self.value = np.concatenate(blocks, axis=0)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf reached by every row in every tree, as global node ids.

        Returns an ``(n_trees, n_rows)`` int64 matrix; index it into
        ``value`` to gather leaf payloads.  The descent is
        level-synchronous: one iteration advances every still-internal
        (tree, row) state by one level, so the loop runs ``max_depth``
        times total rather than per tree.  The split comparison is the
        same ``x <= threshold`` the per-tree kernel uses, making the
        reached leaves — and therefore the gathered payload bits —
        identical to per-tree application.
        """
        X = np.asarray(X, dtype=np.float64)
        n, n_features = X.shape
        x_flat = np.ascontiguousarray(X).ravel()
        # Tree-major flat state: entry t*n + r tracks row r in tree t.
        # ``rows`` carries each active state's row index through the
        # per-level compress so it never needs recomputing via ``% n``;
        # ``take`` gathers beat fancy indexing on the hot arrays.
        node = np.repeat(self.offsets[:-1], n)
        active = np.flatnonzero(self.children_left.take(node) != _LEAF)
        rows = active % n
        while active.size:
            current = node.take(active)
            x_value = x_flat.take(rows * n_features + self.feature.take(current))
            go_left = x_value <= self.threshold.take(current)
            advanced = np.where(
                go_left, self.children_left.take(current), self.children_right.take(current)
            )
            node[active] = advanced
            still_internal = self.children_left.take(advanced) != _LEAF
            active = active[still_internal]
            rows = rows[still_internal]
        return node.reshape(self.n_trees, n)
