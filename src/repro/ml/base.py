"""Estimator base classes and data-validation helpers.

This module defines the minimal estimator protocol the rest of the library
builds on.  It deliberately mirrors the scikit-learn conventions (``fit`` /
``predict`` / ``predict_proba``, ``get_params`` / ``set_params``, trailing
underscore for fitted attributes) so the code reads familiarly, but it is a
from-scratch implementation on plain numpy.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from ..exceptions import NotFittedError, ValidationError

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "check_array",
    "check_X_y",
    "check_is_fitted",
]


def check_array(X: Any, *, name: str = "X", allow_1d: bool = False) -> np.ndarray:
    """Validate ``X`` and return it as a float64 2-D array.

    Rejects empty inputs and non-finite values with actionable messages.
    With ``allow_1d`` a vector input is promoted to a single-column matrix.
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        if not allow_1d:
            raise ValidationError(f"{name} must be 2-dimensional, got a 1-D array; reshape(-1, 1) if intentional")
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got {arr.ndim} dimensions")
    if arr.shape[0] == 0:
        raise ValidationError(f"{name} has no samples")
    if arr.shape[1] == 0:
        raise ValidationError(f"{name} has no features")
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite values; impute or drop them first")
    return arr


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and label vector of matching length."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-dimensional, got {y.ndim} dimensions")
    if y.shape[0] != X.shape[0]:
        raise ValidationError(f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}")
    return X, y


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator.attribute`` exists."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() before using this method"
        )


class BaseEstimator:
    """Base class providing parameter introspection and cloning.

    Subclasses must accept all hyper-parameters as explicit keyword
    arguments in ``__init__`` and store them verbatim on ``self`` under the
    same names — ``get_params`` discovers them by introspecting the
    signature.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        if cls.__init__ is object.__init__:
            return []  # parameterless estimator
        init_signature = inspect.signature(cls.__init__)
        skip = (inspect.Parameter.VAR_KEYWORD, inspect.Parameter.VAR_POSITIONAL)
        return [
            name
            for name, parameter in init_signature.parameters.items()
            if name != "self" and parameter.kind not in skip
        ]

    def get_params(self) -> dict[str, Any]:
        """Return this estimator's hyper-parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters; unknown names raise :class:`ValidationError`."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValidationError(
                    f"invalid parameter {name!r} for {type(self).__name__}; valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters.

    Composite estimators (e.g. pipelines) that hold sub-estimators can
    define their own ``clone`` method, which takes precedence.
    """
    custom = getattr(estimator, "clone", None)
    if callable(custom):
        return custom()
    return type(estimator)(**estimator.get_params())


class ClassifierMixin:
    """Mixin adding label handling and a default ``score``/``predict``.

    Fitting classifiers call :meth:`_encode_labels` once to map arbitrary
    label values onto ``0..n_classes-1`` and store ``classes_``.  Their
    ``predict_proba`` must return columns in ``classes_`` order;
    ``predict`` then decodes the argmax back to original labels.
    """

    classes_: np.ndarray | None = None

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        classes, encoded = np.unique(y, return_inverse=True)
        if classes.shape[0] < 2:
            raise ValidationError("classification needs at least 2 distinct classes in y")
        self.classes_ = classes
        return encoded.astype(np.int64)

    @property
    def n_classes_(self) -> int:
        check_is_fitted(self, "classes_")
        return int(self.classes_.shape[0])

    def predict(self, X: Any) -> np.ndarray:
        """Predict labels as the argmax of :meth:`predict_proba`."""
        check_is_fitted(self, "classes_")
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))
