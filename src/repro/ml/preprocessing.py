"""Feature preprocessing transformers.

These are the preprocessing steps the AutoML pipelines search over:
standardization, min-max scaling, mean/median imputation, one-hot encoding
of integer-coded categorical columns, and label encoding.  All follow the
``fit``/``transform`` protocol from :mod:`repro.ml.base`.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..exceptions import ValidationError
from .base import BaseEstimator, check_array, check_is_fitted

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "SimpleImputer",
    "OneHotEncoder",
    "LabelEncoder",
    "IdentityTransformer",
]


class IdentityTransformer(BaseEstimator):
    """No-op transformer, used as the 'no preprocessing' pipeline choice."""

    def fit(self, X, y=None) -> "IdentityTransformer":
        self.n_features_ = check_array(X).shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "n_features_")
        return check_array(X)

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Constant columns are left centered but unscaled (divisor forced to 1)
    so transform never divides by zero.
    """

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(f"expected {self.mean_.shape[0]} features, got {X.shape[1]}")
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class MinMaxScaler(BaseEstimator):
    """Scale features to the ``[0, 1]`` range seen during fit."""

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_array(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "min_")
        X = check_array(X)
        if X.shape[1] != self.min_.shape[0]:
            raise ValidationError(f"expected {self.min_.shape[0]} features, got {X.shape[1]}")
        return (X - self.min_) / self.span_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class SimpleImputer(BaseEstimator):
    """Replace NaN entries with the per-column mean or median.

    Unlike the other transformers this one accepts NaN in its input (that is
    its whole point), so it performs its own lighter validation.
    """

    def __init__(self, strategy: str = "mean"):
        if strategy not in ("mean", "median"):
            raise ValidationError(f"strategy must be 'mean' or 'median', got {strategy!r}")
        self.strategy = strategy

    @staticmethod
    def _as_matrix(X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got {X.ndim} dimensions")
        return X

    def fit(self, X, y=None) -> "SimpleImputer":
        X = self._as_matrix(X)
        with warnings.catch_warnings():
            # An all-NaN column legitimately has no statistic; it is
            # handled below, so the numpy warning is just noise.
            warnings.simplefilter("ignore", RuntimeWarning)
            if self.strategy == "mean":
                fill = np.nanmean(X, axis=0)
            else:
                fill = np.nanmedian(X, axis=0)
        # A column that is entirely NaN has no statistic; fill with zero.
        self.fill_ = np.where(np.isfinite(fill), fill, 0.0)
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "fill_")
        X = self._as_matrix(X).copy()
        if X.shape[1] != self.fill_.shape[0]:
            raise ValidationError(f"expected {self.fill_.shape[0]} features, got {X.shape[1]}")
        rows, cols = np.where(~np.isfinite(X))
        X[rows, cols] = self.fill_[cols]
        return X

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class OneHotEncoder(BaseEstimator):
    """One-hot encode selected integer-coded columns, pass the rest through.

    Values unseen during fit map to the all-zeros vector for that column,
    which keeps transform total on test data.
    """

    def __init__(self, columns: tuple[int, ...] = ()):
        self.columns = tuple(columns)

    def fit(self, X, y=None) -> "OneHotEncoder":
        X = check_array(X)
        for col in self.columns:
            if not 0 <= col < X.shape[1]:
                raise ValidationError(f"one-hot column {col} out of range for {X.shape[1]} features")
        self.categories_ = {col: np.unique(X[:, col]) for col in self.columns}
        self.n_input_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "categories_")
        X = check_array(X)
        if X.shape[1] != self.n_input_features_:
            raise ValidationError(f"expected {self.n_input_features_} features, got {X.shape[1]}")
        blocks = []
        for col in range(X.shape[1]):
            if col in self.categories_:
                cats = self.categories_[col]
                blocks.append((X[:, col : col + 1] == cats.reshape(1, -1)).astype(np.float64))
            else:
                blocks.append(X[:, col : col + 1])
        return np.hstack(blocks)

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class LabelEncoder(BaseEstimator):
    """Map arbitrary hashable labels onto ``0..n_classes-1``."""

    def fit(self, y) -> "LabelEncoder":
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValidationError("LabelEncoder expects a 1-D label array")
        self.classes_ = np.unique(y)
        return self

    def transform(self, y) -> np.ndarray:
        check_is_fitted(self, "classes_")
        y = np.asarray(y)
        encoded = np.searchsorted(self.classes_, y)
        valid = (encoded < self.classes_.size) & (self.classes_[np.minimum(encoded, self.classes_.size - 1)] == y)
        if not valid.all():
            unknown = np.unique(y[~valid])
            raise ValidationError(f"labels not seen during fit: {unknown.tolist()}")
        return encoded.astype(np.int64)

    def inverse_transform(self, encoded) -> np.ndarray:
        check_is_fitted(self, "classes_")
        encoded = np.asarray(encoded, dtype=np.int64)
        if encoded.min(initial=0) < 0 or encoded.max(initial=0) >= self.classes_.size:
            raise ValidationError("encoded labels out of range")
        return self.classes_[encoded]

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)
