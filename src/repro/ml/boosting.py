"""Gradient-boosted trees for classification.

Multi-class gradient boosting with one regression tree per class per round,
fit to the softmax cross-entropy gradient (the classic GBM recipe).  Depth
is kept shallow by default; the model family contributes strong,
differently-biased members to the AutoML ensemble.

``decision_function`` evaluates every stage tree through one
:class:`repro.ml.kernels.TreeBank` traversal instead of ``rounds ×
classes`` per-tree passes; the logit accumulation replays the historical
stage/class loop order exactly, keeping predictions bitwise-identical
(``_decision_function_per_member`` keeps the legacy loop as the
benchmark baseline and equivalence-test reference).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state, spawn
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y
from .kernels import TreeBank, bank_enabled
from .linear import softmax
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingClassifier"]


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Softmax gradient boosting over shallow CART regression trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds; each round fits ``n_classes`` trees.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    subsample:
        Row fraction drawn (without replacement) per round; values below 1
        give stochastic gradient boosting.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: RandomState = None,
    ):
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValidationError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, _ = X.shape
        k = self.n_classes_
        rng = check_random_state(self.random_state)

        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), encoded] = 1.0
        priors = np.clip(one_hot.mean(axis=0), 1e-12, 1.0)
        self.base_score_ = np.log(priors)

        logits = np.tile(self.base_score_, (n, 1))
        self.stages_: list[list[DecisionTreeRegressor]] = []
        round_rngs = spawn(rng, self.n_estimators)
        for round_rng in round_rngs:
            probs = softmax(logits)
            residual = one_hot - probs  # negative gradient of cross-entropy
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf, int(round(self.subsample * n)))
                rows = round_rng.choice(n, size=min(size, n), replace=False)
            else:
                rows = np.arange(n)
            stage: list[DecisionTreeRegressor] = []
            for c in range(k):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    random_state=round_rng,
                )
                tree.fit(X[rows], residual[rows, c])
                logits[:, c] += self.learning_rate * tree.predict(X)
                stage.append(tree)
            self.stages_.append(stage)
        self.n_features_ = X.shape[1]
        self._bank = None
        return self

    def __getstate__(self):
        # The bank is a pure function of the stage trees — rebuild it
        # lazily after unpickling instead of doubling the artifact bytes.
        state = self.__dict__.copy()
        state["_bank"] = None
        return state

    def _tree_bank(self) -> TreeBank:
        """All stage trees, stage-major, in one struct-of-arrays bank."""
        bank = getattr(self, "_bank", None)
        if bank is None:
            bank = TreeBank([tree.tree_ for stage in self.stages_ for tree in stage])
            self._bank = bank
        return bank

    def _validate_predict_input(self, X) -> np.ndarray:
        check_is_fitted(self, "stages_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        return X

    def decision_function(self, X) -> np.ndarray:
        X = self._validate_predict_input(X)
        if not bank_enabled():
            return self._accumulate_stage_logits(X)
        bank = self._tree_bank()
        leaves = bank.apply(X)  # (rounds * classes, n) stage-major
        # Accumulate stage by stage, class by class — the identical float
        # sequence the per-tree loop performs — so logits stay bitwise-equal.
        logits = np.tile(self.base_score_, (X.shape[0], 1))
        index = 0
        for stage in self.stages_:
            for c in range(len(stage)):
                logits[:, c] += self.learning_rate * bank.value[leaves[index], 0]
                index += 1
        return logits

    def _accumulate_stage_logits(self, X: np.ndarray) -> np.ndarray:
        """Legacy per-tree loop (benchmark baseline / equivalence reference)."""
        logits = np.tile(self.base_score_, (X.shape[0], 1))
        for stage in self.stages_:
            for c, tree in enumerate(stage):
                logits[:, c] += self.learning_rate * tree.predict(X)
        return logits

    def _decision_function_per_member(self, X) -> np.ndarray:
        """Validated entry point for the legacy path (tests, benchmarks)."""
        return self._accumulate_stage_logits(self._validate_predict_input(X))

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))
