"""Naive Bayes classifiers (Gaussian and multinomial).

Naive Bayes is the canonical example in the paper's discussion of priors
(§1): its conditional-independence assumption is exactly the kind of domain
prior a customization wrapper could inject.  :mod:`repro.domain` builds on
the Gaussian variant for that reason.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y

__all__ = ["GaussianNB", "MultinomialNB"]


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian naive Bayes with per-class diagonal covariance.

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every per-class variance, avoiding degenerate zero-variance features.
    """

    def __init__(self, *, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValidationError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        k = self.n_classes_
        d = X.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_prior_ = np.zeros(k)
        epsilon = self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        for c in range(k):
            members = X[encoded == c]
            self.theta_[c] = members.mean(axis=0)
            self.var_[c] = members.var(axis=0) + epsilon
            self.class_prior_[c] = members.shape[0] / X.shape[0]
        self.n_features_ = d
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((X.shape[0], self.n_classes_))
        for c in range(self.n_classes_):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[c]))
            mahalanobis = np.sum((X - self.theta_[c]) ** 2 / self.var_[c], axis=1)
            jll[:, c] = np.log(self.class_prior_[c]) - 0.5 * (log_det + mahalanobis)
        return jll

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "theta_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        likelihood = np.exp(jll)
        return likelihood / likelihood.sum(axis=1, keepdims=True)


class MultinomialNB(BaseEstimator, ClassifierMixin):
    """Multinomial naive Bayes for non-negative count-like features.

    Suits the firewall dataset's byte/packet-count columns.  ``alpha`` is
    the usual Laplace/Lidstone smoothing term.
    """

    def __init__(self, *, alpha: float = 1.0):
        if alpha <= 0:
            raise ValidationError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def fit(self, X, y) -> "MultinomialNB":
        X, y = check_X_y(X, y)
        if (X < 0).any():
            raise ValidationError("MultinomialNB requires non-negative features")
        encoded = self._encode_labels(y)
        k = self.n_classes_
        d = X.shape[1]
        self.feature_log_prob_ = np.zeros((k, d))
        self.class_log_prior_ = np.zeros(k)
        for c in range(k):
            members = X[encoded == c]
            counts = members.sum(axis=0) + self.alpha
            self.feature_log_prob_[c] = np.log(counts / counts.sum())
            self.class_log_prior_[c] = np.log(members.shape[0] / X.shape[0])
        self.n_features_ = d
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "feature_log_prob_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        if (X < 0).any():
            raise ValidationError("MultinomialNB requires non-negative features")
        jll = X @ self.feature_log_prob_.T + self.class_log_prior_
        jll -= jll.max(axis=1, keepdims=True)
        likelihood = np.exp(jll)
        return likelihood / likelihood.sum(axis=1, keepdims=True)
