"""Dataset splitting and cross-validation utilities.

The evaluation protocol in the paper leans heavily on repeated splits
(20 test sets per experiment, 5 re-splits of the firewall data), so these
helpers are exercised throughout :mod:`repro.experiments`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state
from .base import clone

__all__ = [
    "train_test_split",
    "stratified_split_indices",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "partition_evenly",
]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    stratify: bool = False,
    random_state: RandomState = None,
):
    """Split ``(X, y)`` into train and test portions.

    Returns ``X_train, X_test, y_train, y_test``.  With ``stratify`` the
    class proportions of ``y`` are preserved in both portions (up to
    rounding); every class keeps at least one training sample.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}")
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = check_random_state(random_state)
    if stratify:
        train_idx, test_idx = stratified_split_indices(y, test_fraction=test_size, rng=rng)
    else:
        order = rng.permutation(X.shape[0])
        n_test = max(1, int(round(test_size * X.shape[0])))
        if n_test >= X.shape[0]:
            raise ValidationError("test_size leaves no training samples")
        test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def stratified_split_indices(
    y: np.ndarray,
    *,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-class shuffled index split preserving label proportions."""
    y = np.asarray(y)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        members = rng.permutation(members)
        n_test = int(round(test_fraction * members.size))
        n_test = min(n_test, members.size - 1)  # keep >=1 training sample per class
        test_parts.append(members[:n_test])
        train_parts.append(members[n_test:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    test_idx = rng.permutation(np.concatenate(test_parts)) if test_parts else np.array([], dtype=int)
    return train_idx, test_idx


def partition_evenly(n: int, k: int, *, rng: np.random.Generator) -> list[np.ndarray]:
    """Randomly partition ``range(n)`` into ``k`` nearly equal index groups.

    Used to divide held-out data into the paper's 20 test sets.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    if n < k:
        raise ValidationError(f"cannot partition {n} samples into {k} non-empty groups")
    order = rng.permutation(n)
    return [np.sort(part) for part in np.array_split(order, k)]


class KFold:
    """Plain k-fold cross validation over shuffled indices."""

    def __init__(self, n_splits: int = 5, *, random_state: RandomState = None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValidationError(f"cannot make {self.n_splits} folds from {n} samples")
        rng = check_random_state(self.random_state)
        folds = partition_evenly(n, self.n_splits, rng=rng)
        for i, test_idx in enumerate(folds):
            train_idx = np.concatenate([fold for j, fold in enumerate(folds) if j != i])
            yield np.sort(train_idx), test_idx


class StratifiedKFold:
    """K-fold that keeps per-class proportions approximately equal per fold."""

    def __init__(self, n_splits: int = 5, *, random_state: RandomState = None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        rng = check_random_state(self.random_state)
        fold_members: list[list[np.ndarray]] = [[] for _ in range(self.n_splits)]
        for label in np.unique(y):
            members = rng.permutation(np.flatnonzero(y == label))
            if members.size < self.n_splits:
                raise ValidationError(
                    f"class {label!r} has {members.size} samples, fewer than n_splits={self.n_splits}"
                )
            for i, chunk in enumerate(np.array_split(members, self.n_splits)):
                fold_members[i].append(chunk)
        folds = [np.sort(np.concatenate(parts)) for parts in fold_members]
        for i, test_idx in enumerate(folds):
            train_idx = np.sort(np.concatenate([fold for j, fold in enumerate(folds) if j != i]))
            yield train_idx, test_idx


def cross_val_score(estimator, X, y, *, cv=None, scorer=None) -> np.ndarray:
    """Fit a clone of ``estimator`` per fold and return out-of-fold scores.

    ``scorer(y_true, y_pred) -> float`` defaults to plain accuracy.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if cv is None:
        cv = StratifiedKFold(n_splits=3, random_state=0)
    if scorer is None:
        scorer = lambda y_true, y_pred: float(np.mean(y_true == y_pred))
    scores = []
    for train_idx, test_idx in cv.split(X, y):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores, dtype=np.float64)
