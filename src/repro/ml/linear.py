"""Linear classifiers: multinomial (softmax) logistic regression.

Optimized with full-batch gradient descent plus Nesterov momentum and a
simple backtracking step size — robust without external optimizers, and
fast enough at the dataset sizes this library targets.  Features are
internally standardized so a single learning-rate schedule works across
datasets; coefficients are folded back to the original scale after fit.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y

__all__ = ["LogisticRegression", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """L2-regularized multinomial logistic regression.

    Parameters
    ----------
    C:
        Inverse regularization strength (as in scikit-learn); larger values
        mean weaker regularization.
    max_iter, tol:
        Gradient-descent iteration cap and relative-loss stopping tolerance.
    """

    def __init__(self, *, C: float = 1.0, max_iter: int = 300, tol: float = 1e-6):
        if C <= 0:
            raise ValidationError(f"C must be positive, got {C}")
        if max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        n, d = X.shape
        k = self.n_classes_

        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        Z = (X - mean) / scale
        Z = np.hstack([Z, np.ones((n, 1))])  # bias column

        one_hot = np.zeros((n, k))
        one_hot[np.arange(n), encoded] = 1.0
        lam = 1.0 / (self.C * n)

        W = np.zeros((d + 1, k))
        velocity = np.zeros_like(W)
        momentum = 0.9
        # Lipschitz-style step size: ||Z||^2/(4n) bounds the softmax Hessian.
        lipschitz = (np.linalg.norm(Z, ord="fro") ** 2) / (4.0 * n) + lam
        step = 1.0 / lipschitz

        def loss_and_grad(weights: np.ndarray) -> tuple[float, np.ndarray]:
            probs = softmax(Z @ weights)
            data_loss = -np.mean(np.log(np.clip(probs[np.arange(n), encoded], 1e-12, 1.0)))
            reg = 0.5 * lam * np.sum(weights[:-1] ** 2)
            grad = Z.T @ (probs - one_hot) / n
            grad[:-1] += lam * weights[:-1]
            return data_loss + reg, grad

        previous_loss = np.inf
        for _ in range(self.max_iter):
            lookahead = W + momentum * velocity
            loss, grad = loss_and_grad(lookahead)
            velocity = momentum * velocity - step * grad
            W = W + velocity
            if abs(previous_loss - loss) < self.tol * max(1.0, abs(previous_loss)):
                break
            previous_loss = loss

        # Fold the standardization back into the reported coefficients so
        # predict works directly on raw features.
        self.coef_ = (W[:-1] / scale[:, None]).T
        self.intercept_ = W[-1] - (mean / scale) @ W[:-1]
        self.n_features_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        return X @ self.coef_.T + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))
