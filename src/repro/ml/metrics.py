"""Classification metrics.

The paper's headline metric is *balanced accuracy* (mean per-class recall),
chosen to be robust to label imbalance; the firewall dataset in particular
is heavily imbalanced.  We also provide the standard companions used by the
AutoML search and the tests.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "log_loss",
]


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValidationError(f"label shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValidationError("cannot score empty label arrays")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def _label_indices(labels: np.ndarray, order: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Map ``values`` onto row/column indices of ``labels``, or -1 if absent."""
    sorted_labels = labels[order]
    positions = np.clip(np.searchsorted(sorted_labels, values), 0, labels.size - 1)
    indices = order[positions]
    return np.where(labels[indices] == values, indices, -1)


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted ``j``.

    ``labels`` fixes row/column order; by default the sorted union of the
    labels present in either array is used.  Counting is a vectorized
    label-index mapping plus one :func:`np.bincount` — no Python-level
    loop over samples.
    """
    y_true, y_pred = _check_labels(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    try:
        order = np.argsort(labels, kind="stable")
        t_idx = _label_indices(labels, order, y_true)
        p_idx = _label_indices(labels, order, y_pred)
    except TypeError:
        # Incomparable label dtypes (e.g. mixed str/int object arrays)
        # cannot be sorted; fall back to the dict-indexed loop.
        index = {label: i for i, label in enumerate(labels.tolist())}
        matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
        for t, p in zip(y_true.tolist(), y_pred.tolist()):
            if t not in index or p not in index:
                raise ValidationError(f"label {t!r} or {p!r} not in the provided labels")
            matrix[index[t], index[p]] += 1
        return matrix
    unknown = (t_idx < 0) | (p_idx < 0)
    if unknown.any():
        first = int(np.flatnonzero(unknown)[0])
        t, p = y_true.tolist()[first], y_pred.tolist()[first]
        raise ValidationError(f"label {t!r} or {p!r} not in the provided labels")
    flat = np.bincount(t_idx * labels.size + p_idx, minlength=labels.size * labels.size)
    return flat.reshape(labels.size, labels.size).astype(np.int64)


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean recall over the classes present in ``y_true``.

    Classes that appear only in ``y_pred`` contribute no recall term, which
    matches the conventional definition and keeps the metric defined on
    small test splits.
    """
    y_true, y_pred = _check_labels(y_true, y_pred)
    recalls = []
    for label in np.unique(y_true):
        mask = y_true == label
        recalls.append(float(np.mean(y_pred[mask] == label)))
    return float(np.mean(recalls))


def precision_recall_f1(y_true, y_pred, label) -> tuple[float, float, float]:
    """Precision, recall and F1 of a single class (one-vs-rest)."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    tp = float(np.sum((y_true == label) & (y_pred == label)))
    fp = float(np.sum((y_true != label) & (y_pred == label)))
    fn = float(np.sum((y_true == label) & (y_pred != label)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def macro_f1(y_true, y_pred) -> float:
    """Unweighted mean of per-class F1 over classes present in ``y_true``."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    scores = [precision_recall_f1(y_true, y_pred, label)[2] for label in np.unique(y_true)]
    return float(np.mean(scores))


def log_loss(y_true, proba, labels) -> float:
    """Multi-class cross-entropy of predicted probabilities.

    ``proba`` columns must follow ``labels`` order.  Probabilities are
    clipped away from 0/1 for numerical stability.
    """
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    labels = np.asarray(labels)
    if proba.ndim != 2 or proba.shape[0] != y_true.shape[0]:
        raise ValidationError(f"proba shape {proba.shape} does not match {y_true.shape[0]} samples")
    if proba.shape[1] != labels.size:
        raise ValidationError(f"proba has {proba.shape[1]} columns but {labels.size} labels were given")
    index = {label: i for i, label in enumerate(labels.tolist())}
    try:
        columns = np.array([index[label] for label in y_true.tolist()])
    except KeyError as exc:
        raise ValidationError(f"y_true contains a label absent from labels: {exc}") from exc
    picked = np.clip(proba[np.arange(y_true.size), columns], 1e-12, 1.0)
    return float(-np.mean(np.log(picked)))
