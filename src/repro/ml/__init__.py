"""From-scratch machine-learning substrate.

A compact, numpy-only reimplementation of the model families an
AutoSklearn-style system searches over, plus the preprocessing, metrics and
model-selection utilities the rest of the library needs.  The estimator
protocol intentionally mirrors scikit-learn (``fit`` / ``predict`` /
``predict_proba`` / ``get_params``).
"""

from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y, clone
from .boosting import GradientBoostingClassifier
from .forest import ExtraTreesClassifier, RandomForestClassifier
from .kernels import TreeBank, per_member_fallback
from .linear import LogisticRegression, softmax
from .metrics import accuracy, balanced_accuracy, confusion_matrix, log_loss, macro_f1, precision_recall_f1
from .model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    partition_evenly,
    stratified_split_indices,
    train_test_split,
)
from .naive_bayes import GaussianNB, MultinomialNB
from .neighbors import KNeighborsClassifier
from .preprocessing import (
    IdentityTransformer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "ExtraTreesClassifier",
    "GradientBoostingClassifier",
    "TreeBank",
    "per_member_fallback",
    "LogisticRegression",
    "softmax",
    "GaussianNB",
    "MultinomialNB",
    "KNeighborsClassifier",
    "StandardScaler",
    "MinMaxScaler",
    "SimpleImputer",
    "OneHotEncoder",
    "LabelEncoder",
    "IdentityTransformer",
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "log_loss",
    "train_test_split",
    "stratified_split_indices",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "partition_evenly",
]
