"""k-nearest-neighbors classification.

Distances are computed blockwise against the stored training matrix so the
memory footprint stays bounded even for large query batches.  Features are
standardized internally (kNN is scale-sensitive and the AutoML search feeds
it raw features alongside the preprocessing it chooses).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y

__all__ = ["KNeighborsClassifier"]

_BLOCK_ROWS = 256


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Classic kNN with uniform or inverse-distance vote weighting."""

    def __init__(self, n_neighbors: int = 5, *, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValidationError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValidationError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self._y = self._encode_labels(y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self.n_features_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "classes_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        Z = (X - self._mean) / self._scale
        k = min(self.n_neighbors, self._X.shape[0])
        proba = np.zeros((Z.shape[0], self.n_classes_))
        train_sq = np.sum(self._X**2, axis=1)
        for start in range(0, Z.shape[0], _BLOCK_ROWS):
            block = Z[start : start + _BLOCK_ROWS]
            # squared euclidean via the expansion ||a-b||^2 = ||a||^2 - 2ab + ||b||^2
            distances = np.sum(block**2, axis=1)[:, None] - 2.0 * block @ self._X.T + train_sq[None, :]
            np.maximum(distances, 0.0, out=distances)
            neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(block.shape[0])[:, None]
            neighbor_dist = distances[rows, neighbor_idx]
            if self.weights == "distance":
                weights = 1.0 / (np.sqrt(neighbor_dist) + 1e-12)
            else:
                weights = np.ones_like(neighbor_dist)
            labels = self._y[neighbor_idx]
            for c in range(self.n_classes_):
                proba[start : start + block.shape[0], c] = np.sum(weights * (labels == c), axis=1)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba
