"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ValidationError(ReproError, ValueError):
    """Raised when user-provided data or parameters are invalid."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class SearchBudgetError(ReproError):
    """Raised when an AutoML search is configured with an impossible budget."""


class EmulationError(ReproError):
    """Raised when a network emulation scenario is malformed or diverges."""


class SubspaceError(ReproError, ValueError):
    """Raised for invalid subspace algebra operations (e.g. empty domains)."""


class ServeError(ReproError):
    """Base class for online-serving failures (:mod:`repro.serve`)."""


class RegistryError(ServeError):
    """Raised when a model-registry operation cannot be honored."""


class BackpressureError(ServeError):
    """Raised when the inference queue is full and a request is shed.

    The typed alternative to blocking: a caller seeing this error knows the
    service is overloaded *now* and can retry, down-sample, or fail over —
    the request was never enqueued.
    """


class RequestTimeoutError(ServeError):
    """Raised when a request's reply did not arrive within its timeout."""


class LoadTestError(ReproError):
    """Raised when a load-test invariant (accounting, shed rate, p99) fails."""


class StoreError(ReproError):
    """Base class for artifact-store failures (:mod:`repro.store`)."""


class StoreIntegrityError(StoreError):
    """Raised when a blob's bytes do not hash to their claimed SHA-256 digest.

    Raised server-side when an uploaded body does not match the digest the
    client declared, and client-side when a fetched body does not match the
    digest the server declared — the two ends of the wire-integrity
    contract.  The offending bytes are never installed.
    """


class PayloadTooLargeError(StoreError):
    """Raised when a request body exceeds the store's size bound (HTTP 413)."""


class StoreUnavailableError(StoreError):
    """Raised when the artifact store cannot serve (shut down or unreachable).

    The remote cache tier catches this (and raw socket errors) to degrade
    to local-only operation: a peer being down must never fail a task.
    """
