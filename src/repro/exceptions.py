"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ValidationError(ReproError, ValueError):
    """Raised when user-provided data or parameters are invalid."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class SearchBudgetError(ReproError):
    """Raised when an AutoML search is configured with an impossible budget."""


class EmulationError(ReproError):
    """Raised when a network emulation scenario is malformed or diverges."""


class SubspaceError(ReproError, ValueError):
    """Raised for invalid subspace algebra operations (e.g. empty domains)."""
