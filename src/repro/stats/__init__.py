"""Statistical machinery for the evaluation (Wilcoxon tests, Table 1)."""

from .bootstrap import BootstrapCI, bootstrap_difference_ci, bootstrap_mean_ci
from .significance import AlgorithmScores, SignificanceTable
from .wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = [
    "WilcoxonResult",
    "wilcoxon_signed_rank",
    "AlgorithmScores",
    "SignificanceTable",
    "BootstrapCI",
    "bootstrap_mean_ci",
    "bootstrap_difference_ci",
]
