"""Cross-algorithm significance analysis (the p-value columns of Table 1).

Given per-test-set balanced accuracies for every algorithm, build the
``P(x, y)`` matrix of one-sided Wilcoxon p-values the paper reports, plus
``mean ± std`` summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .wilcoxon import wilcoxon_signed_rank

__all__ = ["AlgorithmScores", "SignificanceTable"]


@dataclass
class AlgorithmScores:
    """Per-test-set scores of one algorithm across repeats.

    ``scores`` is flat: one balanced accuracy per (repeat, test-set) pair,
    in a consistent order across algorithms so the Wilcoxon pairing is
    meaningful.
    """

    name: str
    scores: np.ndarray

    def __post_init__(self):
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.scores.ndim != 1 or self.scores.size == 0:
            raise ValidationError(f"scores for {self.name!r} must be a non-empty 1-D array")

    @property
    def mean(self) -> float:
        return float(self.scores.mean())

    @property
    def std(self) -> float:
        return float(self.scores.std(ddof=1)) if self.scores.size > 1 else 0.0

    def formatted(self) -> str:
        return f"{self.mean * 100:.1f}% ± {self.std * 100:.2f}%"


class SignificanceTable:
    """All algorithms' scores plus pairwise one-sided Wilcoxon p-values."""

    def __init__(self, algorithms: list[AlgorithmScores]):
        if not algorithms:
            raise ValidationError("need at least one algorithm")
        lengths = {a.scores.size for a in algorithms}
        if len(lengths) != 1:
            raise ValidationError(f"algorithms have mismatched score counts: {sorted(lengths)}")
        names = [a.name for a in algorithms]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate algorithm names: {names}")
        self.algorithms = algorithms
        self._by_name = {a.name: a for a in algorithms}

    def names(self) -> list[str]:
        return [a.name for a in self.algorithms]

    def scores(self, name: str) -> AlgorithmScores:
        try:
            return self._by_name[name]
        except KeyError:
            raise ValidationError(f"unknown algorithm {name!r}; have {self.names()}") from None

    def p_value(self, worse: str, better: str) -> float:
        """P(worse, better): one-sided test that ``worse`` scores lower.

        Small values support the claim "``better`` beats ``worse``"; this
        is exactly the paper's ``P(x, y)`` convention.
        """
        if worse == better:
            return float("nan")
        result = wilcoxon_signed_rank(
            self.scores(worse).scores, self.scores(better).scores, alternative="less"
        )
        return result.p_value

    def matrix_against(self, references: list[str]) -> dict[str, dict[str, float]]:
        """P(x, ref) for every algorithm x and each reference column."""
        return {
            algorithm.name: {ref: self.p_value(algorithm.name, ref) for ref in references}
            for algorithm in self.algorithms
        }

    def format_table(self, references: list[str]) -> str:
        """Render a Table-1-style text table (accuracy + p-value columns)."""
        for ref in references:
            self.scores(ref)  # validate early
        headers = ["Algorithm", "balanced accuracy"] + [f"P(X, {ref})" for ref in references]
        rows = []
        for algorithm in self.algorithms:
            cells = [algorithm.name, algorithm.formatted()]
            for ref in references:
                p = self.p_value(algorithm.name, ref)
                cells.append("NA" if np.isnan(p) else f"{p:.3g}")
            rows.append(cells)
        widths = [max(len(row[i]) for row in [headers] + rows) for i in range(len(headers))]
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)
