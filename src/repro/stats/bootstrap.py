"""Bootstrap confidence intervals for paired score comparisons.

The Wilcoxon test answers "is X worse than Y"; operators also want *by how
much*.  :func:`bootstrap_mean_ci` gives a percentile CI for one
algorithm's mean score; :func:`bootstrap_difference_ci` resamples the
*paired* per-test-set differences, preserving the paper's pairing
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state

__all__ = ["BootstrapCI", "bootstrap_mean_ci", "bootstrap_difference_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.estimate:.4f} [{self.low:.4f}, {self.high:.4f}] @ {self.confidence:.0%}"


def _validate(scores: np.ndarray, confidence: float, n_resamples: int) -> None:
    if scores.ndim != 1 or scores.size < 2:
        raise ValidationError("need a 1-D array of at least 2 scores")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValidationError(f"n_resamples must be >= 100, got {n_resamples}")


def bootstrap_mean_ci(
    scores,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    random_state: RandomState = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of ``scores``."""
    scores = np.asarray(scores, dtype=np.float64)
    _validate(scores, confidence, n_resamples)
    rng = check_random_state(random_state)
    indices = rng.integers(0, scores.size, size=(n_resamples, scores.size))
    means = scores[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(scores.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_difference_ci(
    scores_x,
    scores_y,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    random_state: RandomState = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of the paired ``y − x`` differences.

    A CI entirely above zero supports "Y beats X"; straddling zero means
    the data cannot distinguish them — the complement to the Wilcoxon
    p-value the paper reports.
    """
    scores_x = np.asarray(scores_x, dtype=np.float64)
    scores_y = np.asarray(scores_y, dtype=np.float64)
    if scores_x.shape != scores_y.shape:
        raise ValidationError(f"paired scores disagree in shape: {scores_x.shape} vs {scores_y.shape}")
    differences = scores_y - scores_x
    _validate(differences, confidence, n_resamples)
    rng = check_random_state(random_state)
    indices = rng.integers(0, differences.size, size=(n_resamples, differences.size))
    means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(differences.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )
