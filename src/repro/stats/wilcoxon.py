"""One-sided Wilcoxon signed-rank test.

The paper reports ``P(x, y)`` — the p-value of the one-sided Wilcoxon
signed-rank test with the alternative hypothesis that algorithm ``x``'s
per-test-set balanced accuracy is *less* than algorithm ``y``'s.  We
implement the test directly (exact null distribution for small samples,
normal approximation with tie correction otherwise) and cross-check it
against :func:`scipy.stats.wilcoxon` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank"]

_EXACT_LIMIT = 20


@dataclass(frozen=True)
class WilcoxonResult:
    """Test outcome: the W+ statistic and the one/two-sided p-value."""

    statistic: float
    p_value: float
    n_effective: int
    method: str

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(values)
    ranks = np.empty(values.size, dtype=np.float64)
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def _exact_p_value(w_plus: float, ranks: np.ndarray, alternative: str) -> float:
    """Exact tail probability by enumerating all sign assignments.

    Feasible for ``n <= 20`` via the standard dynamic program over the
    distribution of W+ (ranks doubled to stay integral with .5 tie ranks).
    """
    scaled = np.round(ranks * 2).astype(np.int64)
    total = int(scaled.sum())
    # distribution[w] = number of sign assignments with doubled-W+ == w
    distribution = np.zeros(total + 1, dtype=np.float64)
    distribution[0] = 1.0
    for rank in scaled:
        shifted = np.zeros_like(distribution)
        shifted[rank:] = distribution[: total + 1 - rank]
        distribution = distribution + shifted
    distribution /= distribution.sum()
    w2 = int(round(w_plus * 2))
    cdf = float(distribution[: w2 + 1].sum())
    sf = float(distribution[w2:].sum())
    if alternative == "less":
        return min(1.0, cdf)
    if alternative == "greater":
        return min(1.0, sf)
    return min(1.0, 2.0 * min(cdf, sf))


def _normal_p_value(w_plus: float, ranks: np.ndarray, alternative: str) -> float:
    from scipy.stats import norm

    n = ranks.size
    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # Tie correction: subtract sum(t^3 - t)/48 over tie groups.
    _, counts = np.unique(ranks, return_counts=True)
    variance -= np.sum(counts**3 - counts) / 48.0
    if variance <= 0:
        return 1.0
    # Continuity correction of 0.5 toward the mean.
    if alternative == "less":
        z = (w_plus - mean + 0.5) / np.sqrt(variance)
        return float(norm.cdf(z))
    if alternative == "greater":
        z = (w_plus - mean - 0.5) / np.sqrt(variance)
        return float(norm.sf(z))
    z = (w_plus - mean) / np.sqrt(variance)
    return float(2.0 * norm.sf(abs(z)))


def wilcoxon_signed_rank(
    x,
    y,
    *,
    alternative: str = "less",
) -> WilcoxonResult:
    """Paired Wilcoxon signed-rank test of ``x`` against ``y``.

    ``alternative='less'`` tests whether ``x`` tends to be smaller than
    ``y`` (the paper's direction: the non-ALE approach has lower balanced
    accuracy than the ALE approach).  Zero differences are discarded, the
    standard (Wilcoxon) zero handling.
    """
    if alternative not in ("less", "greater", "two-sided"):
        raise ValidationError(f"unknown alternative {alternative!r}")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValidationError(f"x and y must be equal-length 1-D arrays, got {x.shape} and {y.shape}")
    differences = x - y
    differences = differences[differences != 0.0]
    n = differences.size
    if n == 0:
        return WilcoxonResult(statistic=0.0, p_value=1.0, n_effective=0, method="degenerate")
    ranks = _rank_with_ties(np.abs(differences))
    w_plus = float(ranks[differences > 0].sum())
    if n <= _EXACT_LIMIT:
        p = _exact_p_value(w_plus, ranks, alternative)
        method = "exact"
    else:
        p = _normal_p_value(w_plus, ranks, alternative)
        method = "normal"
    return WilcoxonResult(statistic=w_plus, p_value=p, n_effective=n, method=method)
