"""The reprolint rule engine.

One :class:`LintEngine` drives everything: it parses each file once,
resolves import aliases and the file's dotted module name, then performs a
single AST walk feeding every enabled rule.  Rules are small stateful
visitors registered with :func:`register`; they yield
:class:`~repro.devtools.findings.Finding` records which the engine filters
through inline ``# reprolint: disable=RLxxx`` suppressions and the
configured per-rule path allowlists, and finally sorts for deterministic
output.

The engine deliberately imports nothing from the rest of ``repro`` — the
linter must stay runnable on a tree whose runtime code is broken.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from .config import LintConfig
from .findings import Finding, Severity

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "registered_rules",
    "registered_project_rules",
    "FileContext",
    "LintEngine",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_*,\s]+)")


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and override any of the three
    hooks.  A fresh instance is created per file, so instance attributes
    initialised in :meth:`start` are safe per-file state.
    """

    id: str = "RL000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR
    description: str = ""

    def start(self, ctx: "FileContext") -> None:
        """Called once before the walk; reset per-file state here."""

    def visit(self, node: ast.AST, ctx: "FileContext") -> Iterable[Finding]:
        """Called for every AST node in the file, in document order."""
        return ()

    def finish(self, ctx: "FileContext") -> Iterable[Finding]:
        """Called once after the walk; emit whole-module findings here."""
        return ()

    def finding(
        self, ctx: "FileContext", node: ast.AST | None, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` (module-level if ``None``)."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule:
    """Base class for whole-project rules (cross-file analyses).

    Unlike :class:`Rule`, which sees one file at a time, a project rule's
    single :meth:`scan` hook receives every successfully parsed
    :class:`FileContext` of the run at once — the shape needed for
    properties no single file can witness, like "this exported name is
    never imported anywhere".  A fresh instance is created per
    ``lint_project`` call.
    """

    id: str = "RL000"
    name: str = "abstract-project-rule"
    severity: Severity = Severity.ERROR
    description: str = ""

    def scan(self, contexts: list["FileContext"]) -> Iterable[Finding]:
        """Analyze the whole file set; yield findings anchored to files."""
        return ()

    def finding(self, ctx: "FileContext", node: ast.AST | None, message: str) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, type[Rule]] = {}
_PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (keyed by id)."""
    if not rule_cls.id or rule_cls.id == Rule.id:
        raise ValueError(f"rule {rule_cls.__name__} must define a unique non-default id")
    if rule_cls.id in _REGISTRY and _REGISTRY[rule_cls.id] is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def register_project(rule_cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the registry (keyed by id)."""
    if not rule_cls.id or rule_cls.id == ProjectRule.id:
        raise ValueError(f"project rule {rule_cls.__name__} must define a unique non-default id")
    if rule_cls.id in _PROJECT_REGISTRY and _PROJECT_REGISTRY[rule_cls.id] is not rule_cls:
        raise ValueError(f"duplicate project rule id {rule_cls.id!r}")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"rule id {rule_cls.id!r} is already a per-file rule")
    _PROJECT_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def registered_rules() -> list[type[Rule]]:
    """All registered rule classes, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def registered_project_rules() -> list[type[ProjectRule]]:
    """All registered project-rule classes, ordered by rule id."""
    return [_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY)]


class FileContext:
    """Everything rules may want to know about the file being linted."""

    def __init__(self, path: Path, source: str, tree: ast.Module, config: LintConfig, root: Path | None):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.display_path = _display_path(path, root)
        self.module = _module_name(path) or _module_from_parts(path, config.root_package)
        #: local name -> fully qualified target, e.g. ``np -> numpy`` or
        #: ``default_rng -> numpy.random.default_rng`` (absolute imports only).
        self.aliases = _collect_aliases(tree)
        #: Project-scan marker: this file joined the run only as a potential
        #: consumer of exports; project rules must not report findings in it.
        self.usage_only = False

    # -- helpers rules share -------------------------------------------------

    def resolve_call_target(self, node: ast.Call) -> str | None:
        """Fully qualified dotted name of ``node``'s callee, if resolvable.

        Walks ``a.b.c(...)`` attribute chains down to a root ``Name`` and
        substitutes the root through this file's import aliases; returns
        ``None`` for calls on computed objects (e.g. ``rng.uniform(...)``
        where ``rng`` is a local variable).
        """
        parts: list[str] = []
        func = node.func
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if not isinstance(func, ast.Name):
            return None
        root = self.aliases.get(func.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def layer_of(self, module: str) -> str | None:
        """First-level layer of a dotted module under the root package.

        ``repro.netsim.link`` -> ``netsim``; ``repro.rng`` -> ``rng``;
        modules outside the root package -> ``None``.
        """
        root = self.config.root_package
        if module == root:
            return "__init__"
        prefix = root + "."
        if not module.startswith(prefix):
            return None
        return module[len(prefix):].split(".", 1)[0]


class LintEngine:
    """Parses files and feeds every enabled rule in a single AST walk."""

    def __init__(
        self,
        config: LintConfig | None = None,
        rules: Iterable[type[Rule]] | None = None,
        project_rules: Iterable[type[ProjectRule]] | None = None,
    ):
        self.config = config or LintConfig()
        rule_classes = list(rules) if rules is not None else registered_rules()
        self.rule_classes = [cls for cls in rule_classes if self.config.rule_enabled(cls.id)]
        project_classes = list(project_rules) if project_rules is not None else registered_project_rules()
        self.project_rule_classes = [cls for cls in project_classes if self.config.rule_enabled(cls.id)]

    def lint_paths(self, paths: Iterable[Path | str], root: Path | str | None = None) -> list[Finding]:
        """Lint files and directories (recursively); returns sorted findings."""
        root = Path(root) if root is not None else None
        findings: list[Finding] = []
        for path in self._expand(paths):
            findings.extend(self.lint_file(path, root=root))
        return sorted(findings)

    def lint_file(self, path: Path | str, root: Path | None = None) -> list[Finding]:
        """Lint one file; returns its findings sorted by location."""
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return sorted(self.lint_source(source, path=path, root=root))

    def lint_source(self, source: str, path: Path | str = "<string>", root: Path | None = None) -> list[Finding]:
        """Lint source text directly (the unit-test entry point)."""
        path = Path(path)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=_display_path(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id="RL000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(path, source, tree, self.config, root)
        rules = [cls() for cls in self.rule_classes]
        for rule in rules:
            rule.start(ctx)
        raw: list[Finding] = []
        for node in ast.walk(tree):
            for rule in rules:
                raw.extend(rule.visit(node, ctx))
        for rule in rules:
            raw.extend(rule.finish(ctx))
        suppressed = _suppressed_lines(source)
        return [finding for finding in raw if self._keep(finding, suppressed)]

    def lint_project(self, paths: Iterable[Path | str], root: Path | str | None = None) -> list[Finding]:
        """Run the *project* rules over the whole file set at once.

        Parses every ``.py`` file under ``paths`` (unparseable files are
        skipped here — :meth:`lint_paths` already reports their syntax
        errors), hands the full context list to each enabled project rule,
        and filters findings through the same inline-suppression and
        path-allowlist machinery as per-file findings.  Complementary to
        :meth:`lint_paths`; the CLI runs both and merges.

        Files under the configured ``deadcode_roots`` (resolved against the
        config's ``base_dir``) always join the set as *usage-only*
        contexts (``ctx.usage_only = True``): they count as consumers but
        are never themselves checked for dead exports, so a narrow run
        like ``repro lint src`` still sees the consumers in ``tests/``.
        """
        root = Path(root) if root is not None else None
        explicit = list(self._expand(paths))
        seen = {path.resolve() for path in explicit}
        usage_only: list[Path] = []
        if self.config.base_dir is not None:
            for root_name in self.config.deadcode_roots:
                root_dir = Path(self.config.base_dir) / root_name
                if root_dir.is_dir():
                    usage_only.extend(
                        path for path in self._expand([root_dir]) if path.resolve() not in seen
                    )
        contexts: list[FileContext] = []
        suppressions: dict[str, dict[int, set[str]]] = {}
        for path, is_usage_only in [(p, False) for p in explicit] + [(p, True) for p in usage_only]:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                continue
            ctx = FileContext(path, source, tree, self.config, root)
            ctx.usage_only = is_usage_only
            contexts.append(ctx)
            suppressions[ctx.display_path] = _suppressed_lines(source)
        findings: list[Finding] = []
        for cls in self.project_rule_classes:
            findings.extend(cls().scan(contexts))
        return sorted(f for f in findings if self._keep(f, suppressions.get(f.path, {})))

    def _keep(self, finding: Finding, suppressed: dict[int, set[str]]) -> bool:
        if self.config.path_allowed(finding.rule_id, finding.path):
            return False
        ids = suppressed.get(finding.line)
        return not (ids is not None and ("*" in ids or finding.rule_id in ids))

    @staticmethod
    def _expand(paths: Iterable[Path | str]) -> Iterator[Path]:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from sorted(p for p in path.rglob("*.py"))
            else:
                yield path


def _suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled inline on that line.

    ``# reprolint: disable=RL001,RL002`` disables those rules for its own
    line; ``disable=all`` disables every rule there.
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {token.strip() for token in match.group(1).split(",") if token.strip()}
        if "all" in ids or "*" in ids:
            ids = {"*"}
        suppressed[lineno] = ids
    return suppressed


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _module_name(path: Path) -> str | None:
    """Dotted module name inferred from the package layout on disk.

    Walks up while ``__init__.py`` files exist, so ``src/repro/ml/base.py``
    resolves to ``repro.ml.base`` without any configuration.  Returns
    ``None`` for files outside a package (layering then does not apply).
    """
    path = path.resolve() if path.exists() else path
    if path.suffix != ".py":
        return None
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    package_seen = path.stem == "__init__"
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        package_seen = True
        current = current.parent
    if not package_seen or not parts:
        return None
    return ".".join(parts)


def _module_from_parts(path: Path, root_package: str) -> str | None:
    """Fallback module resolution for paths that do not exist on disk.

    Lets unit tests lint synthetic sources under invented paths like
    ``src/repro/core/bad.py``: the dotted name starts at the last path
    component equal to ``root_package``.
    """
    if path.suffix != ".py":
        return None
    parts = list(path.parts[:-1])
    if path.stem != "__init__":
        parts.append(path.stem)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == root_package:
            return ".".join(parts[index:])
    return None
