"""repro.devtools — static-analysis tooling for the reproduction.

The centerpiece is **reprolint**, an AST-based invariant checker that
enforces what the Python runtime never would: RNG discipline (RL001), the
DESIGN §3 import-layer DAG (RL002), the shared estimator API contract
(RL003), wall-clock purity (RL004), and general footguns (RL005).  Run it
as ``python -m repro lint [paths]`` or programmatically::

    from repro.devtools import LintEngine, load_config

    findings = LintEngine(load_config()).lint_paths(["src/repro"])

This package is deliberately self-contained (stdlib only, no imports from
the rest of ``repro``), so it can lint a tree whose runtime code is broken
and can itself be held to the strictest layer of the DAG.
"""

from .config import (
    DEFAULT_ALLOW,
    DEFAULT_LAYERS,
    LintConfig,
    LintConfigError,
    config_from_table,
    load_config,
)
from .engine import (
    FileContext,
    LintEngine,
    ProjectRule,
    Rule,
    register,
    register_project,
    registered_project_rules,
    registered_rules,
)
from .findings import Finding, Severity
from .reporters import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, render_json, render_text
from . import rules as _rules  # noqa: F401 — importing registers RL001-RL007

__all__ = [
    "DEFAULT_ALLOW",
    "DEFAULT_LAYERS",
    "LintConfig",
    "LintConfigError",
    "config_from_table",
    "load_config",
    "FileContext",
    "LintEngine",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "registered_rules",
    "registered_project_rules",
    "Finding",
    "Severity",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "render_json",
    "render_text",
]
