"""reprolint configuration: built-in defaults plus ``[tool.reprolint]``.

The defaults encode the invariants DESIGN.md §3 commits this codebase to —
the layered import DAG and the modules that legitimately own randomness or
wall-clock access.  A ``[tool.reprolint]`` table in ``pyproject.toml`` can
disable rules, extend per-rule path allowlists, or override the layer map;
project config is merged over (never silently replacing) the defaults so a
partial table cannot accidentally turn the whole linter off.

Recognized table shape::

    [tool.reprolint]
    disable = ["RL005"]            # rule ids switched off globally

    [tool.reprolint.allow]         # per-rule path allowlists (glob or suffix)
    RL001 = ["repro/rng.py"]

    [tool.reprolint.layers]        # package -> allowed repro-internal imports
    core = ["featurespace", "ml", "rng", "exceptions"]
    experiments = "*"              # "*" = unrestricted

    [tool.reprolint.deadcode]      # RL007 intentional-public-API allowlist
    allow = ["repro.serve.*", "main"]   # fnmatch on "module.name" or bare name
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path


class LintConfigError(Exception):
    """Raised when a ``[tool.reprolint]`` table is malformed."""


#: The import DAG of DESIGN.md §3.  Keys are first-level packages (or
#: top-level modules) under ``repro``; values are the sibling layers they
#: may import from, or ``"*"`` for unrestricted.  Absent keys default to
#: unrestricted so third-party trees lint without a layer map.
DEFAULT_LAYERS: dict[str, list[str] | str] = {
    "exceptions": [],
    "rng": ["exceptions"],
    "featurespace": ["exceptions"],
    "ml": ["rng", "exceptions"],
    "stats": ["rng", "exceptions"],
    "netsim": ["featurespace", "rng", "exceptions"],
    "core": ["featurespace", "ml", "rng", "exceptions"],
    "automl": ["ml", "rng", "exceptions"],
    "runtime": ["automl", "core", "featurespace", "ml", "rng", "exceptions"],
    "serve": ["automl", "core", "featurespace", "ml", "rng", "exceptions", "runtime"],
    "store": ["exceptions", "runtime", "serve"],
    "active": ["core", "featurespace", "ml", "rng", "exceptions"],
    "loop": ["active", "automl", "core", "featurespace", "ml", "rng", "exceptions", "runtime", "serve"],
    "loadgen": ["exceptions", "rng", "runtime", "serve"],
    "datasets": ["core", "featurespace", "ml", "netsim", "rng", "exceptions"],
    "domain": ["automl", "core", "featurespace", "ml", "rng", "exceptions"],
    "devtools": [],
    "experiments": "*",
    "cli": "*",
    "__main__": "*",
    "__init__": "*",
}

#: Paths where a rule's constraint legitimately does not apply.  Patterns
#: match the reported (posix) path either as an ``fnmatch`` glob or as a
#: path suffix, so ``repro/rng.py`` matches ``src/repro/rng.py`` too.
DEFAULT_ALLOW: dict[str, list[str]] = {
    # repro.rng is the one module allowed to construct generators.
    "RL001": ["repro/rng.py"],
    # Budget-owning modules: the searches meter their own wall clock and
    # the runtime clock owns every timeout/duration the executors need.
    "RL004": [
        "repro/automl/search.py",
        "repro/automl/halving.py",
        "repro/runtime/clock.py",
    ],
}


@dataclass
class LintConfig:
    """Effective reprolint configuration after merging all sources."""

    disable: set[str] = field(default_factory=set)
    allow: dict[str, list[str]] = field(default_factory=lambda: {k: list(v) for k, v in DEFAULT_ALLOW.items()})
    layers: dict[str, list[str] | str] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    root_package: str = "repro"
    #: RL007 allowlist: exported names that are intentional public API even
    #: when nothing in the tree imports them.  Patterns are ``fnmatch``
    #: globs matched against both the bare name and ``module.name``.
    deadcode_allow: list[str] = field(default_factory=list)
    #: RL007 usage universe: directories (relative to :attr:`base_dir`)
    #: whose files always count as potential consumers of an export, even
    #: when the lint run targets a narrower path set — so ``repro lint src``
    #: does not flag names whose only consumers live in ``tests/``.
    deadcode_roots: list[str] = field(default_factory=lambda: ["src", "tests", "benchmarks", "examples"])
    #: Directory :attr:`deadcode_roots` resolve against — the directory of
    #: the ``pyproject.toml`` the config came from (``None`` = no extras).
    base_dir: Path | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def path_allowed(self, rule_id: str, path: str) -> bool:
        """True when ``path`` is allowlisted for ``rule_id``."""
        posix = path.replace("\\", "/")
        for pattern in self.allow.get(rule_id, ()):
            pattern = pattern.replace("\\", "/")
            if fnmatch(posix, pattern) or posix.endswith(pattern):
                return True
        return False

    def allowed_layers(self, layer: str) -> list[str] | str:
        """Importable sibling layers for ``layer`` (``"*"`` = unrestricted)."""
        return self.layers.get(layer, "*")

    def export_allowed(self, module: str, name: str) -> bool:
        """True when RL007 must not flag ``name`` exported from ``module``."""
        qualified = f"{module}.{name}"
        return any(fnmatch(name, pattern) or fnmatch(qualified, pattern) for pattern in self.deadcode_allow)


def _require(value, kind, what: str):
    if not isinstance(value, kind):
        raise LintConfigError(f"[tool.reprolint] {what} must be {kind.__name__}, got {type(value).__name__}")
    return value


def config_from_table(table: dict) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.reprolint]`` table."""
    config = LintConfig()
    _require(table, dict, "table")
    for rule_id in _require(table.get("disable", []), list, "'disable'"):
        config.disable.add(_require(rule_id, str, "'disable' entries"))
    for rule_id, patterns in _require(table.get("allow", {}), dict, "'allow'").items():
        entries = [_require(p, str, f"'allow.{rule_id}' entries") for p in _require(patterns, list, f"'allow.{rule_id}'")]
        config.allow.setdefault(rule_id, []).extend(entries)
    for layer, allowed in _require(table.get("layers", {}), dict, "'layers'").items():
        if allowed == "*":
            config.layers[layer] = "*"
        else:
            config.layers[layer] = [
                _require(entry, str, f"'layers.{layer}' entries")
                for entry in _require(allowed, list, f"'layers.{layer}'")
            ]
    deadcode = _require(table.get("deadcode", {}), dict, "'deadcode'")
    for pattern in _require(deadcode.get("allow", []), list, "'deadcode.allow'"):
        config.deadcode_allow.append(_require(pattern, str, "'deadcode.allow' entries"))
    if "roots" in deadcode:
        config.deadcode_roots = [
            _require(entry, str, "'deadcode.roots' entries")
            for entry in _require(deadcode["roots"], list, "'deadcode.roots'")
        ]
    if "root_package" in table:
        config.root_package = _require(table["root_package"], str, "'root_package'")
    return config


def load_config(pyproject: Path | str | None = None) -> LintConfig:
    """Load configuration from ``pyproject.toml``.

    With ``pyproject=None`` the file is searched upward from the current
    directory; a missing file or missing table yields the pure defaults.
    """
    path = Path(pyproject) if pyproject is not None else _discover_pyproject()
    if path is None or not path.is_file():
        return LintConfig()
    try:
        import tomllib
    except ImportError:  # Python < 3.11: run on built-in defaults only.
        return LintConfig()
    with open(path, "rb") as handle:
        try:
            data = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(f"cannot parse {path}: {exc}") from exc
    table = data.get("tool", {}).get("reprolint", None)
    if table is None:
        config = LintConfig()
    else:
        config = config_from_table(table)
    config.base_dir = path.parent
    return config


def _discover_pyproject(start: Path | None = None) -> Path | None:
    current = (start or Path.cwd()).resolve()
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
