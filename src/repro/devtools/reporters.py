"""Finding reporters: human text and machine JSON.

Both render an already-sorted finding list, so output is byte-stable for a
given tree — diffs of lint output are meaningful and the JSON form can be
snapshotted in tests.
"""

from __future__ import annotations

import json
from typing import Iterable

from .findings import Finding

__all__ = ["render_text", "render_json", "EXIT_CLEAN", "EXIT_FINDINGS", "EXIT_USAGE"]

#: Exit codes for the lint CLI (mirroring the common flake8/ruff contract).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def render_text(findings: Iterable[Finding]) -> str:
    """One line per finding plus a trailing summary line."""
    findings = list(findings)
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"reprolint: {len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document: sorted findings, sorted keys, count included."""
    findings = list(findings)
    document = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
