"""Finding records emitted by reprolint rules.

A :class:`Finding` pins one rule violation to a file, line and column.
Findings order deterministically by ``(path, line, col, rule id)`` so both
reporters and tests see a stable sequence regardless of rule execution
order or filesystem enumeration order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; errors fail the lint run, warnings do not."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" / "warning" in reports
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def render(self) -> str:
        """One-line human-readable form: ``path:line:col RLxxx message``."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form with stable key order."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
