"""The ``repro lint`` entry point.

Thin orchestration over the engine: load config (built-in defaults merged
with ``[tool.reprolint]`` from the nearest ``pyproject.toml``), lint the
requested paths, render, and translate findings into an exit code.  Kept
separate from :mod:`repro.cli` so the linter runs standalone
(``python -m repro.devtools.cli src/``) even if the runtime package fails
to import.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import LintConfigError, load_config
from .engine import LintEngine
from .reporters import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text", help="report format")
    parser.add_argument("--config", type=Path, default=None, help="explicit pyproject.toml (default: discovered)")
    parser.add_argument("--root", type=Path, default=None, help="base directory findings are reported relative to")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments; returns exit code."""
    try:
        config = load_config(args.config)
    except LintConfigError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return EXIT_USAGE
    engine = LintEngine(config)
    findings = sorted(
        engine.lint_paths(args.paths, root=args.root)
        + engine.lint_project(args.paths, root=args.root)
    )
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant checker for the repro codebase (rules RL001-RL007).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
