"""The concrete reprolint rules, RL001–RL007.

Each rule enforces one invariant the reproduction's correctness argument
rests on (see DESIGN.md §3 and README "Code invariants & reprolint"):

- RL001 — randomness must flow through a passed ``numpy.random.Generator``
  normalized by ``repro.rng.check_random_state``; global-state RNG calls
  make parallel/sharded runs unreproducible.
- RL002 — the package import graph must stay the documented DAG, so the
  interpretation core never grows a dependency on the substrates it
  explains.
- RL003 — every ``repro.ml`` estimator honors the one shared API that
  ``AutoMLClassifier`` and QBC blindly consume.
- RL004 — wall-clock reads live only in budget-owning modules; anywhere
  else they smuggle nondeterminism into supposedly pure computations.
- RL005 — no mutable default arguments, no bare ``except:``.
- RL006 — numpydoc ``Parameters`` sections must not name arguments the
  signature no longer has; stale parameter docs teach callers an API
  that does not exist.
- RL007 — every name a module exports via ``__all__`` must be consumed
  somewhere else in the tree (or allowlisted as intentional public API);
  dead exports are the residue refactors leave behind.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import FileContext, ProjectRule, Rule, register, register_project
from .findings import Finding, Severity

__all__ = [
    "RngDisciplineRule",
    "LayeringRule",
    "EstimatorContractRule",
    "WallClockRule",
    "FootgunRule",
    "DocstringDriftRule",
    "DeadExportRule",
]

# -- RL001 -------------------------------------------------------------------

#: Call targets that read or mutate process-global RNG state.
_GLOBAL_STATE_PREFIXES = ("numpy.random.", "random.")
#: Generator/bit-generator constructors: seeding decisions belong to
#: ``repro.rng``, not to scattered call sites.
_CONSTRUCTOR_TARGETS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.RandomState",
}


@register
class RngDisciplineRule(Rule):
    """RL001: randomness must come from a passed ``Generator``.

    Flags any call into ``numpy.random`` or the stdlib ``random`` module —
    both the legacy global-state functions (``np.random.rand``,
    ``np.random.seed``, ``random.shuffle``) and direct generator
    construction (``np.random.default_rng(...)``).  ``repro/rng.py`` is
    allowlisted in the default config: it is the single module entitled to
    build generators.
    """

    id = "RL001"
    name = "rng-discipline"
    description = "randomness must thread through repro.rng, not global numpy/stdlib RNG state"

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        target = ctx.resolve_call_target(node)
        if target is None:
            return
        if target in _CONSTRUCTOR_TARGETS:
            yield self.finding(
                ctx,
                node,
                f"direct generator construction '{target}' — accept a random_state and "
                "normalize it with repro.rng.check_random_state instead",
            )
        elif target.startswith(_GLOBAL_STATE_PREFIXES):
            yield self.finding(
                ctx,
                node,
                f"global-state RNG call '{target}' — draw from a passed numpy Generator instead",
            )


# -- RL002 -------------------------------------------------------------------


@register
class LayeringRule(Rule):
    """RL002: the package import graph must stay the DESIGN §3 DAG.

    Resolves both ``import x.y`` and ``from ..x import y`` forms (any
    relative level) to dotted modules, maps each endpoint to its
    first-level layer under the root package, and checks the edge against
    the configured layer map.  Intra-layer imports are always allowed;
    imports of modules outside the root package are not this rule's
    business.
    """

    id = "RL002"
    name = "layering"
    description = "cross-package imports must follow the documented layer DAG"

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield from self._check_edge(node, alias.name, ctx)
        elif isinstance(node, ast.ImportFrom):
            target = self._resolve_from(node, ctx)
            if target is not None:
                yield from self._check_edge(node, target, ctx)

    def _resolve_from(self, node: ast.ImportFrom, ctx: FileContext) -> str | None:
        if node.level == 0:
            return node.module
        if ctx.module is None:
            return None  # relative import in an unknown package: cannot resolve
        parts = ctx.module.split(".")
        # The module's own package: itself if it is a package __init__,
        # otherwise its parent; each extra level climbs one package higher.
        package = parts if _is_package(ctx) else parts[:-1]
        climb = node.level - 1
        if climb > len(package):
            return None
        base = package[: len(package) - climb]
        return ".".join(base + (node.module.split(".") if node.module else []))

    def _check_edge(self, node: ast.AST, target_module: str, ctx: FileContext) -> Iterable[Finding]:
        source_layer = ctx.layer_of(ctx.module) if ctx.module else None
        target_layer = ctx.layer_of(target_module)
        if source_layer is None or target_layer is None or source_layer == target_layer:
            return
        allowed = ctx.config.allowed_layers(source_layer)
        if allowed == "*" or target_layer in allowed:
            return
        yield self.finding(
            ctx,
            node,
            f"layer '{source_layer}' must not import '{target_layer}' "
            f"({target_module}); allowed: {sorted(allowed) if allowed else 'nothing'}",
        )


def _is_package(ctx: FileContext) -> bool:
    return ctx.path.stem == "__init__"


# -- RL003 -------------------------------------------------------------------

#: Base classes known to provide ``predict`` to their subclasses.
_PREDICT_PROVIDERS = {"ClassifierMixin"}
#: Calls that mean "this class draws randomness".
_RANDOMNESS_SOURCES = {"check_random_state", "spawn"}


@register
class EstimatorContractRule(Rule):
    """RL003: ``repro.ml`` estimators must honor the shared API.

    For every class in ``repro.ml`` that defines ``fit``:

    - every ``return`` in ``fit`` must be ``return self`` (and at least
      one must exist), so call sites can chain ``Estimator().fit(X, y)``;
    - the class must expose ``predict`` or ``transform`` — directly,
      through ``ClassifierMixin``, or through a same-module base class;
    - if any method draws randomness (calls ``check_random_state`` or
      ``spawn``), the constructor must accept ``random_state``.
    """

    id = "RL003"
    name = "estimator-contract"
    description = "repro.ml estimators: fit returns self, predict/transform exists, random_state accepted"

    def start(self, ctx: FileContext) -> None:
        # Class name -> ClassDef for same-module base resolution.
        self._classes = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not isinstance(node, ast.ClassDef):
            return
        ml_package = f"{ctx.config.root_package}.ml"
        if ctx.module is None or not (ctx.module == ml_package or ctx.module.startswith(ml_package + ".")):
            return
        methods = _own_methods(node)
        fit = methods.get("fit")
        if fit is None:
            return
        yield from self._check_fit_returns(fit, ctx)
        if not self._provides_consumer_api(node, seen=set()):
            yield self.finding(
                ctx,
                node,
                f"estimator '{node.name}' defines fit but neither defines nor inherits predict/transform",
            )
        if self._draws_randomness(node) and not self._accepts_random_state(node):
            yield self.finding(
                ctx,
                node,
                f"estimator '{node.name}' draws randomness but its __init__ does not accept random_state",
            )

    def _check_fit_returns(self, fit: ast.FunctionDef, ctx: FileContext) -> Iterable[Finding]:
        returns = [n for n in _walk_function_body(fit) if isinstance(n, ast.Return)]
        if not returns:
            yield self.finding(ctx, fit, f"'{fit.name}' must end with 'return self' (no return found)")
            return
        for ret in returns:
            if not (isinstance(ret.value, ast.Name) and ret.value.id == "self"):
                yield self.finding(ctx, ret, "fit must 'return self', not another value")

    def _provides_consumer_api(self, node: ast.ClassDef, seen: set[str]) -> bool:
        methods = _own_methods(node)
        if "predict" in methods or "transform" in methods:
            return True
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if name is None or name in seen:
                continue
            seen.add(name)
            if name in _PREDICT_PROVIDERS:
                return True
            base_def = self._classes.get(name)
            if base_def is not None and self._provides_consumer_api(base_def, seen):
                return True
        return False

    @staticmethod
    def _draws_randomness(node: ast.ClassDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
                if name in _RANDOMNESS_SOURCES:
                    return True
        return False

    def _accepts_random_state(self, node: ast.ClassDef, seen: set[str] | None = None) -> bool:
        seen = set() if seen is None else seen
        methods = _own_methods(node)
        for method_name in ("__init__", "fit"):
            method = methods.get(method_name)
            if method is not None and _accepts_param(method, "random_state"):
                return True
        if "__init__" in methods:
            return False  # the class owns its signature and it lacks random_state
        for base in node.bases:  # no __init__ here: the inherited one may accept it
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if name is None or name in seen:
                continue
            seen.add(name)
            base_def = self._classes.get(name)
            if base_def is not None and self._accepts_random_state(base_def, seen):
                return True
        return False


def _own_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _accepts_param(func: ast.FunctionDef, param: str) -> bool:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return param in names or args.kwarg is not None


def _walk_function_body(func: ast.FunctionDef):
    """Walk ``func``'s statements without descending into nested defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# -- RL004 -------------------------------------------------------------------

_CLOCK_TARGETS = {
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.process_time",
    "time.time_ns",
    "time.monotonic_ns",
    "time.perf_counter_ns",
}


@register
class WallClockRule(Rule):
    """RL004: wall-clock reads only in budget-owning modules.

    The default config allowlists ``automl/search.py``, ``automl/halving.py``
    and ``experiments/runner.py`` — the modules that own time budgets.
    Anywhere else, a clock read makes a result depend on machine speed.
    """

    id = "RL004"
    name = "wall-clock-purity"
    description = "time.time/monotonic/perf_counter belong only to budget-owning modules"

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        target = ctx.resolve_call_target(node)
        if target in _CLOCK_TARGETS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read '{target}' outside a budget-owning module — "
                "pass elapsed time in, or move the budget logic here explicitly",
            )


# -- RL005 -------------------------------------------------------------------


@register
class FootgunRule(Rule):
    """RL005: no mutable default arguments, no bare ``except:``."""

    id = "RL005"
    name = "no-mutable-default"
    description = "mutable default arguments and bare except clauses are forbidden"

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for default in (*args.defaults, *args.kw_defaults):
                if default is not None and _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in '{name}' — default to None and build inside",
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare 'except:' swallows SystemExit/KeyboardInterrupt — catch a library error type",
            )


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"} and not node.args and not node.keywords
    return False


# -- RL006 -------------------------------------------------------------------


@register
class DocstringDriftRule(Rule):
    """RL006: numpydoc ``Parameters`` sections must match the signature.

    Parses the ``Parameters`` section of every function and class
    docstring (a class documents its own ``__init__``) and flags each
    documented name the signature does not accept — the drift left behind
    when a parameter is renamed or removed but its docs are not.

    Deliberately one-directional: *undocumented* parameters are fine
    (docstrings may describe only the interesting arguments), and any
    callable taking ``**kwargs`` is skipped entirely because it can
    absorb any documented name.
    """

    id = "RL006"
    name = "docstring-drift"
    description = "numpydoc Parameters sections must not name arguments the signature lacks"

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check(node, node, f"function '{node.name}'", ctx)
        elif isinstance(node, ast.ClassDef):
            init = _own_methods(node).get("__init__")
            if init is None:
                return  # inherited/generated __init__: signature unknown statically
            yield from self._check(node, init, f"class '{node.name}'", ctx)

    def _check(
        self, doc_owner: ast.AST, signature: ast.FunctionDef, what: str, ctx: FileContext
    ) -> Iterable[Finding]:
        docstring = ast.get_docstring(doc_owner)
        if not docstring:
            return
        args = signature.args
        if args.kwarg is not None:
            return  # **kwargs absorbs any documented name
        accepted = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
        if args.vararg is not None:
            accepted.add(args.vararg.arg)
        for name in _documented_parameters(docstring):
            if name not in accepted:
                yield self.finding(
                    ctx,
                    doc_owner,
                    f"{what} documents parameter '{name}' but its signature does not accept it",
                )


def _documented_parameters(docstring: str) -> list[str]:
    """Parameter names a numpydoc ``Parameters`` section declares.

    Entry lines sit at the section's base indentation as ``name : type``
    (type optional, names possibly comma-separated); deeper-indented lines
    are descriptions.  The section ends at the next underlined header.
    ``ast.get_docstring`` has already dedented the text uniformly.
    """
    lines = docstring.splitlines()
    start = None
    for index in range(len(lines) - 1):
        if lines[index].strip() == "Parameters" and _is_underline(lines[index + 1]):
            start = index
            break
    if start is None:
        return []
    base_indent = _indent_of(lines[start])
    names: list[str] = []
    for index in range(start + 2, len(lines)):
        line = lines[index]
        if not line.strip():
            continue
        if _indent_of(line) > base_indent:
            continue  # description text under the previous entry
        if index + 1 < len(lines) and _is_underline(lines[index + 1]):
            break  # next section header (Returns, Raises, ...)
        head = line.strip().split(":", 1)[0]
        for token in head.split(","):
            token = token.strip().lstrip("*")
            if token.isidentifier():
                names.append(token)
    return names


def _is_underline(line: str) -> bool:
    stripped = line.strip()
    return bool(stripped) and set(stripped) == {"-"}


def _indent_of(line: str) -> int:
    return len(line) - len(line.lstrip())


# -- RL007 -------------------------------------------------------------------


@register_project
class DeadExportRule(ProjectRule):
    """RL007: every ``__all__`` export must be consumed somewhere else.

    A cross-file analysis in two passes over the whole linted file set:

    1. **exports** — for every module under the root package, collect the
       string entries of its top-level ``__all__`` (each pinned to its own
       source line for precise findings);
    2. **uses** — for every file in the set (source *and* tests *and*
       benchmarks *and* examples, whatever the caller passed), collect all
       names that could consume an export: ``from X import name`` targets,
       attribute accesses (``module.name``), and plain name loads.

    An export is dead when its name appears in no file other than the one
    that exports it.  Matching is by name, not by resolved module — which
    cannot produce false positives (any genuine consumer *must* utter the
    name somewhere) at the cost of missing same-named dead code, an
    acceptable trade for a lint gate.  ``from X import *`` defeats
    name-level tracking, so a star-import of a root-package module exempts
    that module's exports.  ``[tool.reprolint.deadcode] allow`` patterns
    mark intentional public API.
    """

    id = "RL007"
    name = "dead-export"
    description = "names exported via __all__ must be imported/used somewhere outside their module"

    def scan(self, contexts: list[FileContext]) -> Iterable[Finding]:
        used_by_file: dict[str, set[str]] = {}
        star_imported: set[str] = set()
        for ctx in contexts:
            used_by_file[ctx.display_path] = self._used_names(ctx, star_imported)
        for ctx in contexts:
            module = ctx.module
            if module is None or ctx.usage_only:
                continue
            root = ctx.config.root_package
            if module != root and not module.startswith(root + "."):
                continue
            if module in star_imported:
                continue
            for name, node in self._exports(ctx):
                if ctx.config.export_allowed(module, name):
                    continue
                if any(name in used for path, used in used_by_file.items() if path != ctx.display_path):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"'{module}.{name}' is exported via __all__ but never imported or used "
                    "outside its module — delete it or allowlist it under "
                    "[tool.reprolint.deadcode]",
                )

    @staticmethod
    def _exports(ctx: FileContext) -> list[tuple[str, ast.AST]]:
        """``(name, node)`` pairs from the module's top-level ``__all__``."""
        exports: list[tuple[str, ast.AST]] = []
        for node in ctx.tree.body:
            targets = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = (node.target,)
            if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
                continue
            value = node.value
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        exports.append((element.value, element))
        return exports

    @staticmethod
    def _used_names(ctx: FileContext, star_imported: set[str]) -> set[str]:
        """Every name this file could be consuming from another module."""
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        if node.level == 0 and node.module:
                            star_imported.add(node.module)
                        elif ctx.module is not None:
                            star_imported.add(ctx.module.rsplit(".", 1)[0])
                    else:
                        used.add(alias.name)
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.Name):
                used.add(node.id)
        return used
